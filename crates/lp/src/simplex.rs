//! Bounded-variable dense primal simplex with warm-started re-solves.
//!
//! The models produced by the register-saturation formulations are small
//! (hundreds of rows and columns), dense-tableau simplex is the simplest
//! correct implementation at that scale, and determinism falls out for free.
//!
//! ## Bounded variables
//!
//! Finite upper bounds are handled **implicitly**: every column carries a
//! status — basic, nonbasic-at-lower, or nonbasic-at-upper — and the ratio
//! test considers three events (a basic variable reaching its lower bound,
//! a basic variable reaching its *upper* bound, and the entering variable
//! flipping straight to its opposite bound without a basis change). The
//! standard form therefore contains **only the structural constraint
//! rows**: no `x ≤ u` bound rows and no bound slacks. The RS linearizations
//! are almost entirely binary variables, so this halves both tableau
//! dimensions compared to the explicit-bound-row formulation (kept as a
//! differential reference in [`crate::reference`]) and shrinks the dense
//! pivot area ~4×.
//!
//! Conversion to standard form:
//! 1. every variable is shifted by its (finite) lower bound, so all
//!    structural variables are `≥ 0` with range `hi − lo` (possibly `∞`);
//! 2. `≤` / `≥` rows receive slack / surplus variables, negative right-hand
//!    sides are negated, and rows without a ready basic column receive an
//!    artificial variable;
//! 3. phase 1 minimizes the artificial sum (infeasible iff it stays
//!    positive), phase 2 optimizes the true objective.
//!
//! The right-hand-side column always stores the **actual basic values**:
//! contributions of nonbasic-at-upper columns are folded in
//! (`rhs = B⁻¹b − Σ_{j at upper} T·ⱼ uⱼ`), and every status change
//! folds/unfolds the affected column, so feasibility is simply
//! `0 ≤ rhs(r) ≤ range(basic(r))`.
//!
//! Anti-cycling: Dantzig pricing normally, with a permanent switch to
//! Bland's rule (smallest eligible entering index, smallest basic index on
//! ratio ties) after an iteration budget proportional to the tableau size.
//! Bound flips move the objective strictly and cannot cycle.
//!
//! ## Warm starts
//!
//! A bound tightening leaves the constraint matrix untouched, so
//! [`solve_with_basis`] accepts the previous solve's optimal [`Basis`]
//! (basic columns **plus nonbasic bound statuses** — both are needed for
//! the hint to survive the bounded rewrite): the tableau is rebuilt, the
//! hinted columns are pivoted back in by Gaussian elimination with column
//! selection, the hinted at-upper columns are folded at the **new** bounds,
//! and the solve resumes with dual simplex when the bound change made the
//! basis primal-infeasible — a single tightening typically converges in a
//! handful of pivots. Any structural mismatch or numerical trouble falls
//! back to the cold two-phase path, so the warm entry point is never less
//! robust than [`solve_relaxation`]. The MILP driver uses this for its
//! diving-heuristic chains; tree nodes re-solve cold on purpose (see
//! `crate::milp` for why).
//!
//! ## Pivot loop
//!
//! The pivot kernel is sparse-aware: the normalized pivot row is snapshot
//! into a scratch buffer together with its nonzero index mask, and each
//! eliminated row either walks only the nonzero columns or, when the pivot
//! row is dense, runs a contiguous `zip` loop that the compiler
//! autovectorizes (no per-element `row * width + col` indexing).

use crate::model::{Cmp, Model, Sense};
use crate::EPS;

/// Pivot elements smaller than this are refused: instead of dividing by a
/// near-zero (silent garbage in release builds), the solve reports
/// [`LpOutcome::PivotTooSmall`], or falls back to the cold path when warm
/// starting.
const PIVOT_MIN: f64 = 1e-11;

/// Columns whose range (`hi − lo`) is at most this are *fixed*: they can
/// never profitably enter the basis, and their reduced cost is vacuously
/// dual feasible (the variable cannot move in either direction).
const FIXED_TOL: f64 = 1e-9;

/// Floor for dual steepest-edge reference weights: float cancellation in
/// the exact update recurrence can drive a weight slightly negative, and a
/// non-positive weight would flip the pricing ratio's sign.
const DSE_MIN: f64 = 1e-10;

/// Leaving-row pricing rule for the dual simplex repair loops.
///
/// Dantzig picks the row with the largest bound violation — one pass over
/// the right-hand side, but blind to how distorted the row is. Dual
/// steepest edge normalizes the violation by the row norm of `B⁻¹A`
/// (`violation² / ‖row‖²`), which consistently picks pivots that make real
/// progress on degenerate big-M relaxations. The weights start exact
/// (`w_r = ‖row_r‖²`) and stay exact: every pivot updates them with the
/// textbook recurrence fused into the elimination loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pricing {
    /// Largest bound violation (the classic rule; always available).
    Dantzig,
    /// Reference-weight dual steepest edge with exact pivot updates.
    DualSteepestEdge,
}

/// A feasible (optimal) LP solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Value per model variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
}

/// Result of an LP relaxation solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Proven optimal solution.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A pivot element fell below the numeric threshold and the solve was
    /// abandoned rather than risk a garbage result. Degenerate models fail
    /// soft with this outcome; callers treat it as "no answer", not as a
    /// verdict about the model.
    PivotTooSmall,
}

/// Per-solve work counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LpStats {
    /// Full tableau eliminations (including warm-start basis reinstalls).
    pub pivots: usize,
    /// Bound flips: a nonbasic column moved to its opposite bound with a
    /// rank-1 right-hand-side update instead of a pivot.
    pub bound_flips: usize,
    /// Basis reinstalls performed: `1` when a warm-start hint was accepted
    /// and pivoted back in by Gaussian elimination (`m` of the counted
    /// pivots are that reinstall), `0` on cold solves and on the in-place
    /// [`DiveTableau`] re-solves, which never reinstall.
    pub reinstalls: usize,
    /// True iff a warm-start hint was accepted and the solve finished on
    /// the warm path (no cold fallback).
    pub warm_hit: bool,
    /// Pivots selected by the dual steepest-edge rule (a subset of
    /// [`LpStats::pivots`]; zero under [`Pricing::Dantzig`]).
    pub dse_pivots: usize,
}

/// Position of a column relative to the current basis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ColStatus {
    Basic,
    /// Nonbasic at its lower bound (shifted value `0`).
    Lower,
    /// Nonbasic at its (finite) upper bound (shifted value `range`).
    Upper,
}

/// An exportable simplex basis: the basic column per structural row plus
/// the set of columns nonbasic at their upper bound, over the structural +
/// slack columns (artificials are never exported).
///
/// Obtained from [`solve_with_basis`] and fed back as a warm-start hint for
/// a model with the same constraint structure (branch-and-bound children
/// qualify: bound tightenings change bounds and right-hand sides, not the
/// row/column layout — branching no longer grows the tableau).
#[derive(Clone, Debug)]
pub struct Basis {
    m: usize,
    /// Structural + slack column count the basis was exported against.
    ncols: usize,
    cols: Vec<usize>,
    /// Columns nonbasic at their upper bound at export time.
    upper: Vec<u32>,
}

/// Internal soft error: a pivot element below [`PIVOT_MIN`].
struct PivotStall;

/// Outcome of the dual simplex repair loop.
enum DualStatus {
    /// Primal feasibility restored; the basis is optimal (the cost row was
    /// and stays dual feasible).
    Feasible,
    /// A row proves primal infeasibility.
    Infeasible,
    /// Iteration budget exhausted without convergence.
    Stalled,
}

#[derive(Clone)]
struct Tableau {
    /// (m + 1) rows × (ncols + 1) columns, row-major; last row is the cost
    /// row, last column the right-hand side (= actual basic values, with
    /// nonbasic-at-upper contributions folded in).
    t: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    /// Column status (basic / at-lower / at-upper).
    status: Vec<ColStatus>,
    /// Shifted upper bound (`hi − lo`) per column; `∞` for slacks,
    /// surpluses, and artificials.
    range: Vec<f64>,
    /// Columns that may enter the basis (artificials are disabled after
    /// phase 1).
    allowed: Vec<bool>,
    /// Eliminations performed.
    pivots: usize,
    /// Bound flips performed.
    flips: usize,
    /// Pivots whose leaving row was chosen by dual steepest edge.
    dse_pivots: usize,
    /// Leaving-row pricing rule for the dual repair loops.
    pricing: Pricing,
    /// Dual steepest-edge reference weights, `w_r = ‖row_r‖²` over the
    /// structural + slack + artificial columns (rhs excluded). Empty until
    /// the first DSE-priced dual loop initializes them; from then on every
    /// pivot keeps them exact. Bound flips and rhs folds touch only the
    /// rhs column, so they leave the weights untouched.
    dse: Vec<f64>,
    /// Reused snapshot of the normalized pivot row.
    scratch_row: Vec<f64>,
    /// Reused nonzero-column mask of the pivot row.
    scratch_nz: Vec<u32>,
    /// Cooperative cancellation, sampled every [`CANCEL_CHECK_MASK`]+1
    /// pivot-loop iterations. A tripped token aborts the optimization as
    /// [`PivotStall`] (callers surface it as
    /// [`LpOutcome::PivotTooSmall`]; the MILP driver disambiguates by
    /// re-checking the token). `None` — the default — costs one branch per
    /// check window.
    cancel: Option<crate::cancel::Cancel>,
}

/// Pivot-loop iterations between cancellation checks (power of two minus
/// one, used as a mask).
const CANCEL_CHECK_MASK: usize = 127;

impl Tableau {
    fn new(m: usize, ncols: usize, range: Vec<f64>) -> Self {
        // lint:allow(D-04) shape invariant of the private constructor; a mismatch panics on first indexed access anyway
        debug_assert_eq!(range.len(), ncols);
        Tableau {
            t: vec![0.0; (m + 1) * (ncols + 1)],
            m,
            ncols,
            basis: vec![usize::MAX; m],
            status: vec![ColStatus::Lower; ncols],
            range,
            allowed: vec![true; ncols],
            pivots: 0,
            flips: 0,
            dse_pivots: 0,
            pricing: Pricing::Dantzig,
            dse: Vec::new(),
            scratch_row: Vec::new(),
            scratch_nz: Vec::new(),
            cancel: None,
        }
    }

    /// Has the attached cancel token (if any) tripped? Amortized: only
    /// sampled when `iters` crosses a check-window boundary.
    #[inline]
    fn cancelled_at(&self, iters: usize) -> bool {
        iters & CANCEL_CHECK_MASK == 0 && self.cancel.as_ref().is_some_and(|c| c.is_set())
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * (self.ncols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.t[r * (self.ncols + 1) + c] = v;
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.ncols)
    }

    /// Upper range of the basic variable of row `r`.
    #[inline]
    fn basic_range(&self, r: usize) -> f64 {
        self.range[self.basis[r]]
    }

    /// Is a nonbasic column eligible to move (not fixed, not disabled)?
    #[inline]
    fn movable(&self, j: usize) -> bool {
        self.allowed[j] && self.status[j] != ColStatus::Basic && self.range[j] > FIXED_TOL
    }

    fn pivot(&mut self, row: usize, col: usize) -> Result<(), PivotStall> {
        let w = self.ncols + 1;
        let piv = self.at(row, col);
        if piv.abs() <= PIVOT_MIN {
            return Err(PivotStall);
        }
        self.pivots += 1;
        // Normalize pivot row.
        let inv = 1.0 / piv;
        let rs = row * w;
        for x in &mut self.t[rs..rs + w] {
            *x *= inv;
        }
        // Snapshot the normalized pivot row and its nonzero columns so the
        // elimination below neither re-reads through `self.t` (which blocks
        // autovectorization) nor touches columns the pivot row cannot
        // change.
        let mut prow = std::mem::take(&mut self.scratch_row);
        let mut pnz = std::mem::take(&mut self.scratch_nz);
        prow.clear();
        prow.extend_from_slice(&self.t[rs..rs + w]);
        pnz.clear();
        for (j, &v) in prow.iter().enumerate() {
            if v.abs() > 1e-13 {
                pnz.push(j as u32);
            }
        }
        let dense = pnz.len() * 2 >= w;
        // Dual steepest-edge bookkeeping: the new pivot-row weight is
        // `‖prow‖²` (rhs column excluded), and each eliminated row updates
        // by the exact recurrence
        //   w_i' = w_i − 2·f_i·(row_i · prow) + f_i²·‖prow‖²
        // whose dot product runs over the row's *pre-elimination* values —
        // accumulated inside the elimination loop itself, so the update
        // costs one extra multiply-add per touched element.
        let track_dse = !self.dse.is_empty();
        let wr_new = if track_dse {
            let mut s = 0.0;
            for &j in &pnz {
                let j = j as usize;
                if j < self.ncols {
                    s += prow[j] * prow[j];
                }
            }
            s
        } else {
            0.0
        };
        // Eliminate the column elsewhere.
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let or_s = r * w;
            let factor = self.t[or_s + col];
            if factor.abs() <= 1e-12 {
                continue;
            }
            let row_slice = &mut self.t[or_s..or_s + w];
            if track_dse && r < self.m {
                // The dot accumulates over every column including the rhs;
                // the rhs contribution (old value × prow rhs entry) is
                // removed afterwards so the weight stays a structural norm.
                let old_rhs = row_slice[w - 1];
                let mut dot = 0.0;
                if dense {
                    for (x, &p) in row_slice.iter_mut().zip(prow.iter()) {
                        dot += *x * p;
                        *x -= factor * p;
                    }
                } else {
                    for &j in &pnz {
                        let j = j as usize;
                        dot += row_slice[j] * prow[j];
                        row_slice[j] -= factor * prow[j];
                    }
                }
                dot -= old_rhs * prow[w - 1];
                self.dse[r] =
                    (self.dse[r] - 2.0 * factor * dot + factor * factor * wr_new).max(DSE_MIN);
            } else if dense {
                for (x, &p) in row_slice.iter_mut().zip(prow.iter()) {
                    *x -= factor * p;
                }
            } else {
                for &j in &pnz {
                    let j = j as usize;
                    row_slice[j] -= factor * prow[j];
                }
            }
            // Force exact zero in the pivot column for stability.
            self.t[or_s + col] = 0.0;
        }
        if track_dse {
            self.dse[row] = wr_new.max(DSE_MIN);
        }
        self.scratch_row = prow;
        self.scratch_nz = pnz;
        self.basis[row] = col;
        Ok(())
    }

    /// Adds `sign · range(col) · column(col)` to the right-hand-side column
    /// (all rows including the cost row). `sign = -1` folds a column that
    /// just moved to its upper bound; `sign = +1` unfolds it.
    fn fold_rhs(&mut self, col: usize, sign: f64) {
        let u = self.range[col];
        if !u.is_finite() || u <= 0.0 {
            return;
        }
        self.fold_rhs_scaled(col, sign * u);
    }

    /// Adds `delta · column(col)` to the right-hand-side column (all rows
    /// including the cost row) — the rank-1 update behind both the at-upper
    /// folds and the in-place bound tightenings of [`DiveTableau`].
    fn fold_rhs_scaled(&mut self, col: usize, delta: f64) {
        // lint:allow(D-03) exact-zero fast path: skipping a literal 0.0 delta is a pure no-op, not a value comparison
        if delta == 0.0 {
            return;
        }
        let w = self.ncols + 1;
        for r in 0..=self.m {
            let a = self.t[r * w + col];
            // lint:allow(D-03) exact-zero fast path over stored entries; adding delta*0.0 would be identical
            if a != 0.0 {
                self.t[r * w + self.ncols] += delta * a;
            }
        }
    }

    /// Moves nonbasic `col` to its opposite bound without a basis change.
    fn flip(&mut self, col: usize, from_upper: bool) {
        self.flips += 1;
        if from_upper {
            self.fold_rhs(col, 1.0);
            self.status[col] = ColStatus::Lower;
        } else {
            self.fold_rhs(col, -1.0);
            self.status[col] = ColStatus::Upper;
        }
    }

    /// Basis change with status/fold bookkeeping: `col` enters (from its
    /// upper bound when `from_upper`), the basic variable of `row` leaves
    /// (to its upper bound when `leave_at_upper`).
    fn pivot_bounded(
        &mut self,
        row: usize,
        col: usize,
        from_upper: bool,
        leave_at_upper: bool,
    ) -> Result<(), PivotStall> {
        if from_upper {
            // Unfold the entering column: the elimination algebra assumes
            // it sits at its lower bound.
            self.fold_rhs(col, 1.0);
        }
        let old = self.basis[row];
        self.pivot(row, col)?;
        self.status[col] = ColStatus::Basic;
        if old != usize::MAX {
            if leave_at_upper {
                self.fold_rhs(old, -1.0);
                self.status[old] = ColStatus::Upper;
            } else {
                self.status[old] = ColStatus::Lower;
            }
        }
        Ok(())
    }

    /// Runs the bounded-variable primal simplex loop on the current cost
    /// row (minimization). Returns `false` if unbounded.
    ///
    /// Anti-cycling: Dantzig pricing with a largest-pivot ratio tie-break
    /// normally; after an iteration budget proportional to the tableau
    /// size, a permanent switch to Bland entering + smallest-basic-index
    /// leaving. (PR 2's lexicographic leaving rule is gone on purpose: its
    /// strictly-decreasing-lex-order argument assumes every degenerate
    /// pivot leaves at the lower bound, which bound flips and
    /// leave-at-upper pivots break; classic Bland is the rule with a
    /// finiteness proof for the bounded-variable simplex, and bound flips
    /// themselves move the objective strictly so they cannot cycle.) A
    /// hard cap backstops the floating-point tie windows either way,
    /// failing soft via [`PivotStall`] rather than looping forever.
    fn optimize(&mut self) -> Result<bool, PivotStall> {
        let iter_budget = 50 * (self.m + self.ncols) + 1000;
        let hard_cap = 4 * iter_budget;
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters > hard_cap || self.cancelled_at(iters) {
                return Err(PivotStall);
            }
            let bland = iters > iter_budget;
            // Entering column: at-lower columns improve with rc < -EPS,
            // at-upper columns with rc > EPS (they can only decrease).
            let mut enter: Option<(usize, bool)> = None;
            let mut best = EPS;
            for j in 0..self.ncols {
                if !self.movable(j) {
                    continue;
                }
                let rc = self.at(self.m, j);
                let from_upper = self.status[j] == ColStatus::Upper;
                let viol = if from_upper { rc } else { -rc };
                if bland {
                    if viol > EPS {
                        enter = Some((j, from_upper));
                        break;
                    }
                } else if viol > best {
                    best = viol;
                    enter = Some((j, from_upper));
                }
            }
            let Some((col, from_upper)) = enter else {
                return Ok(true); // optimal
            };
            match self.ratio_test(col, from_upper, bland) {
                RatioOutcome::Unbounded => return Ok(false),
                RatioOutcome::Flip => self.flip(col, from_upper),
                RatioOutcome::Pivot(row, leave_at_upper) => {
                    self.pivot_bounded(row, col, from_upper, leave_at_upper)?;
                }
            }
        }
    }

    /// Bounded-variable ratio test for `col` entering (moving off its
    /// lower, or when `from_upper` its upper, bound). Considers basic
    /// variables hitting either of their bounds plus the entering column's
    /// own bound flip.
    fn ratio_test(&self, col: usize, from_upper: bool, bland: bool) -> RatioOutcome {
        // The rhs is clamped at zero / range: accumulated drift can leave a
        // basic value at -1e-13, and a negative step would walk the iterate
        // out of the feasible region.
        let mut t_best = self.range[col]; // own bound flip (may be ∞)
        let mut leave: Option<(usize, bool)> = None;
        for r in 0..self.m {
            let a = self.at(r, col);
            if a.abs() <= 1e-9 {
                continue;
            }
            // Basic value rate per unit step of the entering variable.
            let rate = if from_upper { a } else { -a };
            let (t, at_upper) = if rate < 0.0 {
                (self.rhs(r).max(0.0) / -rate, false)
            } else {
                let u = self.basic_range(r);
                if u.is_infinite() {
                    continue;
                }
                ((u - self.rhs(r)).max(0.0) / rate, true)
            };
            let replace = if t < t_best - 1e-12 {
                true
            } else if t > t_best + 1e-12 {
                false
            } else {
                match leave {
                    // Tie with the bound flip: flipping is a rank-1 rhs
                    // update, strictly cheaper — keep it.
                    None => false,
                    Some((lr, _)) => {
                        if bland {
                            self.basis[r] < self.basis[lr]
                        } else {
                            // On ties take the larger pivot element for
                            // numerical stability.
                            a.abs() > self.at(lr, col).abs()
                        }
                    }
                }
            };
            if replace {
                t_best = t;
                leave = Some((r, at_upper));
            }
        }
        match leave {
            None if t_best.is_infinite() => RatioOutcome::Unbounded,
            None => RatioOutcome::Flip,
            Some((row, at_upper)) => RatioOutcome::Pivot(row, at_upper),
        }
    }

    /// Dual simplex repair: restores primal feasibility (with respect to
    /// both bounds of the basic variables) while keeping the cost row dual
    /// feasible. Precondition: every movable at-lower column has reduced
    /// cost `≥ -EPS` and every movable at-upper column `≤ EPS`.
    fn dual_optimize(&mut self) -> Result<DualStatus, PivotStall> {
        self.dual_optimize_capped(50 * (self.m + self.ncols) + 1000)
    }

    /// Computes the dual steepest-edge reference weights from scratch —
    /// one full tableau scan, about the cost of a single pivot. Called
    /// lazily by the first DSE-priced dual loop; afterwards
    /// [`Tableau::pivot`] keeps the weights exact, so the scan never
    /// repeats for the lifetime of the tableau (dive chains included).
    fn init_dse(&mut self) {
        let w = self.ncols + 1;
        self.dse = (0..self.m)
            .map(|r| {
                let s: f64 = self.t[r * w..r * w + self.ncols]
                    .iter()
                    .map(|x| x * x)
                    .sum();
                s.max(DSE_MIN)
            })
            .collect();
    }

    /// [`Tableau::dual_optimize`] with an explicit iteration cap —
    /// strong-branching probes bound their repair effort and treat a
    /// capped-out repair as [`DualStatus::Stalled`] (no estimate).
    fn dual_optimize_capped(&mut self, iter_budget: usize) -> Result<DualStatus, PivotStall> {
        if self.pricing == Pricing::DualSteepestEdge && self.dse.is_empty() {
            self.init_dse();
        }
        let use_dse = !self.dse.is_empty();
        for it in 1..=iter_budget {
            if self.cancelled_at(it) {
                return Err(PivotStall);
            }
            // Leaving row. Dantzig: largest bound violation on either
            // side. Dual steepest edge: largest `violation² / w_r` — the
            // violation measured in the geometry of the row, so a huge
            // violation on a badly-scaled row no longer wins over a
            // genuinely deep one. Both rules break ties towards the
            // smaller row index (strict `>`), deterministically.
            let mut row: Option<(usize, bool)> = None;
            if use_dse {
                let mut best = 0.0f64;
                for r in 0..self.m {
                    let b = self.rhs(r);
                    let u = self.basic_range(r);
                    let (viol, above) = if -b > 1e-9 {
                        (-b, false)
                    } else if u.is_finite() && b - u > 1e-9 {
                        (b - u, true)
                    } else {
                        continue;
                    };
                    let score = viol * viol / self.dse[r];
                    if score > best {
                        best = score;
                        row = Some((r, above));
                    }
                }
            } else {
                let mut worst = 1e-9;
                for r in 0..self.m {
                    let b = self.rhs(r);
                    if -b > worst {
                        worst = -b;
                        row = Some((r, false));
                    }
                    let u = self.basic_range(r);
                    if u.is_finite() && b - u > worst {
                        worst = b - u;
                        row = Some((r, true));
                    }
                }
            }
            let Some((row, above)) = row else {
                return Ok(DualStatus::Feasible);
            };
            // Entering column: dual ratio test. Eligibility depends on the
            // violated side and the column's bound status — the pivot must
            // move the basic value towards the violated bound while keeping
            // every reduced cost on its feasible side.
            let mut col: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_a = 0.0f64;
            for j in 0..self.ncols {
                if !self.movable(j) {
                    continue;
                }
                let a = self.at(row, j);
                let at_upper = self.status[j] == ColStatus::Upper;
                let eligible = match (at_upper, above) {
                    (false, false) => a < -1e-9,
                    (false, true) => a > 1e-9,
                    (true, false) => a > 1e-9,
                    (true, true) => a < -1e-9,
                };
                if !eligible {
                    continue;
                }
                let rc = self.at(self.m, j);
                let num = if at_upper {
                    (-rc).max(0.0)
                } else {
                    rc.max(0.0)
                };
                let ratio = num / a.abs();
                if ratio < best_ratio - 1e-12 || (ratio < best_ratio + 1e-12 && a.abs() > best_a) {
                    best_ratio = ratio;
                    best_a = a.abs();
                    col = Some(j);
                }
            }
            let Some(col) = col else {
                // Every movable column already sits at the bound that pulls
                // the violated basic value as far as it can go: no solution
                // satisfies the bounds — infeasible.
                return Ok(DualStatus::Infeasible);
            };
            let from_upper = self.status[col] == ColStatus::Upper;
            self.pivot_bounded(row, col, from_upper, above)?;
            if use_dse {
                self.dse_pivots += 1;
            }
        }
        Ok(DualStatus::Stalled)
    }

    /// Reduces the cost row against the current basis.
    fn reduce_cost_row(&mut self) {
        for r in 0..self.m {
            let b = self.basis[r];
            let coef = self.at(self.m, b);
            if coef.abs() > 1e-12 {
                for j in 0..=self.ncols {
                    let v = self.at(self.m, j) - coef * self.at(r, j);
                    self.set(self.m, j, v);
                }
                self.set(self.m, b, 0.0);
            }
        }
    }

    /// Primal feasibility of the current basic values against both bounds.
    fn primal_feasible(&self) -> bool {
        (0..self.m).all(|r| {
            let b = self.rhs(r);
            let u = self.basic_range(r);
            b >= -1e-9 && (u.is_infinite() || b <= u + 1e-9)
        })
    }

    /// Dual feasibility of the reduced costs over the first `ncheck`
    /// columns (fixed columns are vacuously dual feasible).
    fn dual_feasible(&self, ncheck: usize) -> bool {
        (0..ncheck).all(|j| {
            if !self.movable(j) {
                return true;
            }
            let rc = self.at(self.m, j);
            match self.status[j] {
                ColStatus::Lower => rc >= -EPS,
                ColStatus::Upper => rc <= EPS,
                ColStatus::Basic => true,
            }
        })
    }
}

/// Result of the bounded ratio test.
enum RatioOutcome {
    Unbounded,
    /// The entering column's own bound is the binding limit.
    Flip,
    /// `(leaving row, leaves at upper bound)`.
    Pivot(usize, bool),
}

/// One standard-form constraint row over shifted structural variables.
struct Row {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// The standard form shared by the cold and warm solve paths.
pub(crate) struct StdForm {
    n: usize,
    m: usize,
    lo: Vec<f64>,
    /// Shifted upper bound per structural + slack column (`∞` where
    /// unbounded; all-`∞` in the explicit-bound-row reference form).
    range: Vec<f64>,
    rows: Vec<Row>,
    n_slack: usize,
    slack_of_row: Vec<Option<(usize, f64)>>,
    row_sign: Vec<f64>,
    needs_artificial: Vec<bool>,
    n_art: usize,
}

/// Builds the standard form. With `explicit_bounds` (the test-only
/// reference formulation) every finite upper bound becomes a dense
/// `x ≤ range` row with its own slack and all column ranges are `∞`;
/// otherwise bounds stay implicit in the column ranges and the row set is
/// exactly the model's structural constraints.
pub(crate) fn std_form(model: &Model, explicit_bounds: bool) -> StdForm {
    let n = model.num_vars();

    // Shifted variables: x = lo + x', x' in [0, hi - lo].
    let lo: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).0)
        .collect();
    let hi: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).1)
        .collect();

    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints());
    for c in &model.constraints {
        let mut rhs = c.rhs;
        let mut coeffs = Vec::with_capacity(c.expr.terms.len());
        for &(v, coef) in &c.expr.terms {
            rhs -= coef * lo[v.index()];
            coeffs.push((v.index(), coef));
        }
        rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }
    if explicit_bounds {
        for i in 0..n {
            if hi[i].is_finite() {
                rows.push(Row {
                    coeffs: vec![(i, 1.0)],
                    cmp: Cmp::Le,
                    rhs: hi[i] - lo[i],
                });
            }
        }
    }

    let m = rows.len();
    // Column layout: [0, n) structural; then one slack/surplus per Le/Ge
    // row; then artificials as needed (cold path only).
    let mut slack_of_row: Vec<Option<(usize, f64)>> = Vec::with_capacity(m);
    let mut next = n;
    for r in &rows {
        match r.cmp {
            Cmp::Le => {
                slack_of_row.push(Some((next, 1.0)));
                next += 1;
            }
            Cmp::Ge => {
                slack_of_row.push(Some((next, -1.0)));
                next += 1;
            }
            Cmp::Eq => slack_of_row.push(None),
        }
    }
    let n_slack = next - n;

    // Column ranges: structural bounds (implicit form only); slacks are
    // one-sided.
    let mut range: Vec<f64> = Vec::with_capacity(n + n_slack);
    for i in 0..n {
        range.push(if explicit_bounds {
            f64::INFINITY
        } else {
            hi[i] - lo[i]
        });
    }
    range.resize(n + n_slack, f64::INFINITY);

    // Negate rows with negative rhs (flips slack signs too); rows that do
    // not end up with a ready +1 basic column need an artificial.
    let mut needs_artificial: Vec<bool> = vec![false; m];
    let mut row_sign: Vec<f64> = vec![1.0; m];
    for (i, r) in rows.iter().enumerate() {
        let s = if r.rhs < 0.0 { -1.0 } else { 1.0 };
        row_sign[i] = s;
        let slack_coef = slack_of_row[i].map(|(_, c)| c * s);
        // lint:allow(D-03) structural test: slack coefficients are the literals ±1.0 by construction, so exact match is intended
        needs_artificial[i] = slack_coef != Some(1.0);
    }
    let n_art = needs_artificial.iter().filter(|&&b| b).count();

    StdForm {
        n,
        m,
        lo,
        range,
        rows,
        n_slack,
        slack_of_row,
        row_sign,
        needs_artificial,
        n_art,
    }
}

/// Tableau dimensions `(rows, structural + slack columns)` of the
/// bounded-variable standard form — the rows are exactly the model's
/// structural constraints (zero bound rows). The explicit-bound-row
/// reference shape is [`crate::reference::tableau_shape`].
pub fn tableau_shape(model: &Model) -> (usize, usize) {
    std_form_shape(model, false)
}

/// Shared shape helper for the bounded and reference standard forms,
/// computed directly from the model (one row + slack per Le/Ge constraint;
/// the explicit form adds a Le row + slack per finite upper bound) without
/// materializing a `StdForm`.
pub(crate) fn std_form_shape(model: &Model, explicit_bounds: bool) -> (usize, usize) {
    let n = model.num_vars();
    let m = model.num_constraints();
    let slacks = model
        .constraints
        .iter()
        .filter(|c| !matches!(c.cmp, Cmp::Eq))
        .count();
    let finite_uppers = if explicit_bounds {
        (0..n)
            .filter(|&i| model.bounds(crate::VarId(i as u32)).1.is_finite())
            .count()
    } else {
        0
    };
    (m + finite_uppers, n + slacks + finite_uppers)
}

/// Fills the structural, slack, and rhs entries of a tableau whose column
/// count is at least `n + n_slack`.
fn fill_core(tab: &mut Tableau, sf: &StdForm) {
    let w = tab.ncols + 1;
    for (i, r) in sf.rows.iter().enumerate() {
        let s = sf.row_sign[i];
        for &(j, c) in &r.coeffs {
            tab.t[i * w + j] += c * s;
        }
        if let Some((sj, sc)) = sf.slack_of_row[i] {
            tab.t[i * w + sj] = sc * s;
        }
        tab.t[i * w + tab.ncols] = r.rhs * s;
    }
}

/// Installs the phase-2 cost row (minimization of the model objective over
/// the shifted structural variables).
fn set_phase2_cost(tab: &mut Tableau, model: &Model) {
    let minimize_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let m = tab.m;
    for j in 0..=tab.ncols {
        tab.set(m, j, 0.0);
    }
    for &(v, c) in &model.objective.terms {
        let j = v.index();
        let cur = tab.at(m, j);
        tab.set(m, j, cur + minimize_sign * c);
    }
}

/// Extracts the structural solution from an optimal tableau: basic columns
/// read their row's right-hand side, at-upper columns their range, at-lower
/// columns zero.
fn extract(tab: &Tableau, sf: &StdForm, model: &Model) -> Solution {
    let mut shifted = vec![0.0f64; tab.ncols];
    for (j, &s) in tab.status.iter().enumerate() {
        if s == ColStatus::Upper {
            shifted[j] = tab.range[j];
        }
    }
    for r in 0..tab.m {
        let b = tab.basis[r];
        if b < tab.ncols {
            shifted[b] = tab.rhs(r);
        }
    }
    let values: Vec<f64> = (0..sf.n).map(|i| sf.lo[i] + shifted[i]).collect();
    let objective = model.objective.eval(&values);
    Solution { values, objective }
}

/// Exports the basis when it is artificial-free (it always is on the warm
/// path; a cold solve may leave a degenerate artificial basic).
fn export_basis(tab: &Tableau, sf: &StdForm) -> Option<Basis> {
    let core = sf.n + sf.n_slack;
    if tab.basis.iter().all(|&b| b < core) {
        let upper = (0..core)
            .filter(|&j| tab.status[j] == ColStatus::Upper)
            .map(|j| j as u32)
            .collect();
        Some(Basis {
            m: sf.m,
            ncols: core,
            cols: tab.basis.clone(),
            upper,
        })
    } else {
        None
    }
}

/// Solves the LP relaxation of `model` (integrality is ignored).
pub fn solve_relaxation(model: &Model) -> LpOutcome {
    solve_with_basis(model, None).0
}

/// Solves the LP relaxation, optionally warm-starting from a [`Basis`]
/// exported by a previous solve of a structurally identical model (same
/// rows and columns; bound tightenings qualify). Returns the outcome and,
/// when optimal, the basis to seed the next solve with.
///
/// Fast path: if the hinted basis is still primal feasible and dual
/// feasible after the bound change, the solve finishes with **zero**
/// simplex pivots beyond the basis reinstall. A primal-infeasible hint is
/// repaired by dual simplex; anything else falls back to the cold
/// two-phase solve.
pub fn solve_with_basis(model: &Model, hint: Option<&Basis>) -> (LpOutcome, Option<Basis>) {
    let (outcome, basis, _) = solve_with_basis_stats(model, hint);
    (outcome, basis)
}

/// [`solve_with_basis`] with per-solve work counters.
pub fn solve_with_basis_stats(
    model: &Model,
    hint: Option<&Basis>,
) -> (LpOutcome, Option<Basis>, LpStats) {
    solve_with_basis_pricing(model, hint, Pricing::Dantzig)
}

/// [`solve_with_basis_stats`] with an explicit leaving-row pricing rule
/// for the warm path's dual repair. The MILP driver routes
/// `MilpConfig::pricing` through here; [`Pricing::Dantzig`] reproduces the
/// historical behavior exactly.
pub fn solve_with_basis_pricing(
    model: &Model,
    hint: Option<&Basis>,
    pricing: Pricing,
) -> (LpOutcome, Option<Basis>, LpStats) {
    let sf = std_form(model, false);
    let mut stats = LpStats::default();
    if let Some(h) = hint {
        if let Some((outcome, basis, warm_stats)) = warm_solve(model, &sf, h, pricing) {
            stats.pivots += warm_stats.pivots;
            stats.bound_flips += warm_stats.bound_flips;
            stats.reinstalls += warm_stats.reinstalls;
            stats.dse_pivots += warm_stats.dse_pivots;
            stats.warm_hit = true;
            return (outcome, basis, stats);
        }
    }
    let (outcome, basis, cold_stats) = cold_solve(model, &sf);
    stats.pivots += cold_stats.pivots;
    stats.bound_flips += cold_stats.bound_flips;
    stats.dse_pivots += cold_stats.dse_pivots;
    (outcome, basis, stats)
}

/// The warm path: rebuild the tableau without artificials, pivot the hinted
/// columns back into the basis, restore the hinted bound statuses, and
/// resume. `None` means "fall back to the cold path" (structural mismatch
/// or numerical trouble) and is not a verdict about the model.
fn warm_solve(
    model: &Model,
    sf: &StdForm,
    hint: &Basis,
    pricing: Pricing,
) -> Option<(LpOutcome, Option<Basis>, LpStats)> {
    let core = sf.n + sf.n_slack;
    if hint.m != sf.m || hint.ncols != core || hint.cols.len() != sf.m {
        return None;
    }
    let mut tab = Tableau::new(sf.m, core, sf.range.clone());
    tab.pricing = pricing;
    fill_core(&mut tab, sf);

    // Re-install the hinted basis by Gaussian elimination with column
    // selection: the hinted columns still form a nonsingular basis for the
    // child (bound changes never touch the constraint matrix), but the
    // parent's exact row-column pairing replayed in fixed order can hit a
    // zero (an earlier elimination cancels the entry), so each row instead
    // pivots on the largest-magnitude remaining hinted column. Exact
    // arithmetic guarantees a nonzero exists for every row; a numerically
    // tiny best entry falls back cold.
    let mut remaining: Vec<usize> = hint.cols.clone();
    for r in 0..sf.m {
        let mut best: Option<(usize, f64)> = None;
        for (i, &c) in remaining.iter().enumerate() {
            if c >= core {
                return None;
            }
            let mag = tab.at(r, c).abs();
            if best.is_none_or(|(_, b)| mag > b) {
                best = Some((i, mag));
            }
        }
        let (i, mag) = best?;
        if mag <= 1e-9 {
            return None;
        }
        let c = remaining.swap_remove(i);
        tab.pivot(r, c).ok()?;
        tab.status[c] = ColStatus::Basic;
    }
    // Fold the hinted at-upper columns at the *child's* ranges: branching
    // is a pure bound change, so the parent's nonbasic statuses carry over
    // even when the bound values themselves moved. A column whose child
    // range became infinite or fixed stays at lower.
    for &c in &hint.upper {
        let c = c as usize;
        if c >= core {
            return None;
        }
        if tab.status[c] == ColStatus::Basic {
            continue;
        }
        if tab.range[c].is_finite() && tab.range[c] > FIXED_TOL {
            tab.status[c] = ColStatus::Upper;
            tab.fold_rhs(c, -1.0);
        }
    }

    set_phase2_cost(&mut tab, model);
    tab.reduce_cost_row();

    if !tab.primal_feasible() {
        // Bound tightenings leave the parent's reduced costs intact, so the
        // cost row is normally still dual feasible and dual simplex repairs
        // feasibility in a few pivots. If dual feasibility was lost too,
        // the hint is useless: go cold.
        if !tab.dual_feasible(core) {
            return None;
        }
        match tab.dual_optimize() {
            Ok(DualStatus::Feasible) => {}
            Ok(DualStatus::Infeasible) => {
                let stats = LpStats {
                    pivots: tab.pivots,
                    bound_flips: tab.flips,
                    reinstalls: 1,
                    warm_hit: true,
                    dse_pivots: tab.dse_pivots,
                };
                return Some((LpOutcome::Infeasible, None, stats));
            }
            Ok(DualStatus::Stalled) | Err(PivotStall) => return None,
        }
    }
    let result = tab.optimize();
    let stats = LpStats {
        pivots: tab.pivots,
        bound_flips: tab.flips,
        reinstalls: 1,
        warm_hit: true,
        dse_pivots: tab.dse_pivots,
    };
    match result {
        Ok(true) => {
            let sol = extract(&tab, sf, model);
            let basis = export_basis(&tab, sf);
            Some((LpOutcome::Optimal(sol), basis, stats))
        }
        Ok(false) => Some((LpOutcome::Unbounded, None, stats)),
        Err(PivotStall) => None,
    }
}

/// The cold two-phase path, shared by the bounded-variable and
/// explicit-bound-row (reference) standard forms.
pub(crate) fn cold_solve(model: &Model, sf: &StdForm) -> (LpOutcome, Option<Basis>, LpStats) {
    let (outcome, basis, stats, _) = cold_solve_tab(model, sf, None, Pricing::Dantzig);
    (outcome, basis, stats)
}

/// [`cold_solve`] variant that also hands back the final tableau on an
/// optimal solve, so [`DiveTableau`] can keep it live across a chain of
/// bound tightenings instead of rebuilding + re-installing a basis per
/// step. A `cancel` token, when given, rides on the tableau: both solve
/// phases — and every later warm repair on the live tableau — abort as
/// [`LpOutcome::PivotTooSmall`] once it trips.
fn cold_solve_tab(
    model: &Model,
    sf: &StdForm,
    cancel: Option<&crate::cancel::Cancel>,
    pricing: Pricing,
) -> (LpOutcome, Option<Basis>, LpStats, Option<Tableau>) {
    let core = sf.n + sf.n_slack;
    let ncols = core + sf.n_art;
    let mut range = sf.range.clone();
    range.resize(ncols, f64::INFINITY);
    let mut tab = Tableau::new(sf.m, ncols, range);
    tab.cancel = cancel.cloned();
    tab.pricing = pricing;
    fill_core(&mut tab, sf);
    {
        let w = ncols + 1;
        let mut art_next = core;
        for i in 0..sf.m {
            if sf.needs_artificial[i] {
                tab.t[i * w + art_next] = 1.0;
                tab.basis[i] = art_next;
                art_next += 1;
            } else {
                tab.basis[i] = sf.slack_of_row[i]
                    .expect("row without slack needs artificial")
                    .0;
            }
            tab.status[tab.basis[i]] = ColStatus::Basic;
        }
    }
    let stats_of = |tab: &Tableau| LpStats {
        pivots: tab.pivots,
        bound_flips: tab.flips,
        reinstalls: 0,
        warm_hit: false,
        dse_pivots: tab.dse_pivots,
    };

    // Phase 1: minimize the artificial sum. Cost row: 1 on artificials,
    // reduce against the artificial basis rows.
    if sf.n_art > 0 {
        let m = sf.m;
        for j in 0..ncols {
            tab.set(m, j, if j >= core { 1.0 } else { 0.0 });
        }
        tab.set(m, ncols, 0.0);
        for r in 0..m {
            if tab.basis[r] >= core {
                // subtract row r from cost row
                for j in 0..=ncols {
                    let v = tab.at(m, j) - tab.at(r, j);
                    tab.set(m, j, v);
                }
            }
        }
        match tab.optimize() {
            // Phase 1 minimizes a sum of nonnegative artificials, so an
            // "unbounded" verdict can only mean numerical breakdown.
            // Surface it instead of running phase 2 on a corrupt tableau.
            Ok(true) => {}
            Ok(false) | Err(PivotStall) => {
                return (LpOutcome::PivotTooSmall, None, stats_of(&tab), None)
            }
        }
        let art_sum = -tab.rhs(m);
        if art_sum > 1e-6 {
            return (LpOutcome::Infeasible, None, stats_of(&tab), None);
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for r in 0..sf.m {
            if tab.basis[r] >= core {
                let mut pivot_col = None;
                for j in 0..core {
                    if tab.status[j] != ColStatus::Basic && tab.at(r, j).abs() > 1e-9 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    let from_upper = tab.status[j] == ColStatus::Upper;
                    if tab.pivot_bounded(r, j, from_upper, false).is_err() {
                        return (LpOutcome::PivotTooSmall, None, stats_of(&tab), None);
                    }
                }
                // else: the row is redundant; the artificial stays basic at 0
                // and its column stays disallowed, which is harmless.
            }
        }
        // Artificials may never re-enter.
        for j in core..ncols {
            tab.allowed[j] = false;
        }
    }

    set_phase2_cost(&mut tab, model);
    tab.reduce_cost_row();
    match tab.optimize() {
        Ok(true) => {
            let sol = extract(&tab, sf, model);
            let basis = export_basis(&tab, sf);
            let stats = stats_of(&tab);
            (LpOutcome::Optimal(sol), basis, stats, Some(tab))
        }
        Ok(false) => (LpOutcome::Unbounded, None, stats_of(&tab), None),
        Err(PivotStall) => (LpOutcome::PivotTooSmall, None, stats_of(&tab), None),
    }
}

/// Outcome of one [`DiveTableau::tighten`] step.
#[derive(Clone, Debug)]
pub enum DiveStep {
    /// The tightened relaxation is optimal.
    Optimal(Solution),
    /// The tightened bounds admit no feasible point.
    Infeasible,
    /// The dual repair exhausted its iteration budget or hit a tiny pivot;
    /// the tableau state is unreliable and the caller should discard it
    /// (heuristic callers abort, exact callers rebuild cold).
    Stalled,
}

/// An **incremental dive tableau**: the factorized tableau of an optimal
/// relaxation kept live across a chain of bound *tightenings*.
///
/// The warm-start path ([`solve_with_basis`]) rebuilds the tableau and
/// re-installs the parent basis by Gaussian elimination — `m` full pivots —
/// before the (usually tiny) dual repair even starts; across a diving
/// chain that reinstall dominates the cost. `DiveTableau` removes it
/// entirely: a bound tightening is applied **in place** as rank-1
/// right-hand-side folds, and the only simplex work per step is the dual
/// repair itself.
///
/// The algebra, for a structural column `j` currently shifted by `lo_j`
/// with range `r_j = hi_j − lo_j` (rhs column = `B⁻¹b − Σ_{k at upper}
/// r_k·T_k`):
///
/// - raising `lo_j` by `d` re-shifts the column (`b ← b − d·A_j`, i.e.
///   `rhs ← rhs − d·T_j`) — unless `j` is nonbasic at upper, where the
///   shrunken fold (`r_j ← r_j − d`) cancels the re-shift exactly and the
///   rhs is untouched;
/// - lowering `hi_j` by `e` shrinks the range; only an at-upper column
///   moves (`rhs ← rhs + e·T_j`).
///
/// Reduced costs never change under bound changes and a tightening can
/// only *remove* movable columns, so the basis stays dual feasible and a
/// single dual-simplex repair restores optimality (or proves the child
/// infeasible). Only tightenings are supported — relaxing a bound could
/// re-mobilize a column whose reduced cost drifted while it was fixed —
/// so callers snapshot via [`Clone`] (one tableau memcpy, ≈ the cost of a
/// single pivot) where they may need to back out, e.g. strong-branching
/// probes and dive batch fallbacks.
#[derive(Clone)]
pub struct DiveTableau {
    tab: Tableau,
    /// Current lower bound per structural variable (the column shift).
    lo: Vec<f64>,
    /// Current upper bound per structural variable.
    hi: Vec<f64>,
    /// Structural variable count.
    n: usize,
}

impl DiveTableau {
    /// Cold-solves the relaxation of `model` (two-phase bounded-variable
    /// simplex — identical work to [`solve_relaxation`]) and keeps the
    /// optimal tableau live. The tableau is `Some` exactly when the
    /// outcome is [`LpOutcome::Optimal`].
    pub fn new(model: &Model) -> (LpOutcome, Option<DiveTableau>, LpStats) {
        Self::new_cancellable(model, None)
    }

    /// [`DiveTableau::new`] with an optional cancellation token that stays
    /// attached to the live tableau: the cold solve and every later
    /// [`DiveTableau::tighten`] repair abort as
    /// [`LpOutcome::PivotTooSmall`] / [`DiveStep::Stalled`] once it trips.
    pub fn new_cancellable(
        model: &Model,
        cancel: Option<&crate::cancel::Cancel>,
    ) -> (LpOutcome, Option<DiveTableau>, LpStats) {
        Self::new_with_pricing(model, cancel, Pricing::Dantzig)
    }

    /// [`DiveTableau::new_cancellable`] with an explicit pricing rule for
    /// every dual repair performed on the live tableau (dive steps and
    /// strong-branching probes). Under [`Pricing::DualSteepestEdge`] the
    /// reference weights are initialized once — lazily, by the first
    /// repair — and maintained exactly across the whole chain.
    pub fn new_with_pricing(
        model: &Model,
        cancel: Option<&crate::cancel::Cancel>,
        pricing: Pricing,
    ) -> (LpOutcome, Option<DiveTableau>, LpStats) {
        let sf = std_form(model, false);
        let (outcome, _, stats, tab) = cold_solve_tab(model, &sf, cancel, pricing);
        let dt = tab.map(|tab| {
            let n = sf.n;
            let hi = (0..n)
                .map(|i| model.bounds(crate::VarId(i as u32)).1)
                .collect();
            DiveTableau {
                tab,
                lo: sf.lo.clone(),
                hi,
                n,
            }
        });
        (outcome, dt, stats)
    }

    /// Current bounds of a structural variable.
    pub fn bounds(&self, v: crate::VarId) -> (f64, f64) {
        (self.lo[v.index()], self.hi[v.index()])
    }

    /// Cumulative `(pivots, bound_flips, dse_pivots)` performed on this
    /// tableau, including the initial cold solve (clones inherit the
    /// counters of their source; callers charge deltas).
    pub fn work(&self) -> (usize, usize, usize) {
        (self.tab.pivots, self.tab.flips, self.tab.dse_pivots)
    }

    /// Gomory mixed-integer cuts read off the current optimal tableau.
    ///
    /// For each basic **structural** column whose variable is integral but
    /// whose value is fractional, the fully eliminated tableau row
    /// `x'_B + Σ ā_j x'_j = b̄` is rewritten over the nonbasic columns'
    /// distances-from-active-bound `t_j ≥ 0` (at-lower: `t = x − lo`;
    /// at-upper: `t = hi − x`; slacks are always at-lower and substitute
    /// back through their defining row), and the standard GMI coefficients
    /// are applied: with `f₀ = frac(b̄)`, an integer-valued `t_j` with
    /// `f_j = frac(g_j)` contributes `min(f_j, f₀(1−f_j)/(1−f₀))`, a
    /// continuous one `g_j` or `f₀(−g_j)/(1−f₀)`. Artificial columns are
    /// identically zero on feasible points and are skipped.
    ///
    /// Every bound consulted is the tableau's **current** box, so the
    /// returned cuts are valid for all integer-feasible points inside it —
    /// on a freshly built tableau (no [`DiveTableau::tighten`] applied)
    /// that box is the model's global box and the cuts are globally valid.
    /// `model` must be the model this tableau was built from (the slack →
    /// row mapping is reconstructed from its constraint list).
    ///
    /// Returns at most `max_cuts` Le-form x-space cuts `(terms, rhs)`,
    /// most-violated tableau rows first; term order, candidate order, and
    /// all arithmetic are deterministic.
    pub(crate) fn gomory_cuts(
        &self,
        model: &Model,
        integral: &[bool],
        max_cuts: usize,
        max_terms: usize,
    ) -> Vec<(Vec<(crate::VarId, f64)>, f64)> {
        const INT_TOL: f64 = 1e-9;
        const COEF_EPS: f64 = 1e-11;
        const DROP_EPS: f64 = 1e-9;
        const MIN_FRAC: f64 = 0.01;
        const MIN_EFFICACY: f64 = 0.01;
        const SNAP_EPS: f64 = 1e-6;
        const MAX_DYNAMISM: f64 = 100.0;
        const GRID: f64 = 1e9;
        let frac_of = |v: f64| v - v.floor();
        let is_int = |v: f64| {
            let f = frac_of(v);
            f <= INT_TOL || f >= 1.0 - INT_TOL
        };

        let tab = &self.tab;
        let n = self.n;
        // Slack column layout mirrors `std_form`: one column per Le/Ge row
        // in row order, starting at `n`; everything past them is
        // artificial. A slack is integer-valued iff its whole defining row
        // is (integral variables, integer coefficients and rhs).
        let mut slack_row: Vec<usize> = Vec::new();
        let mut slack_sign: Vec<f64> = Vec::new();
        let mut slack_int: Vec<bool> = Vec::new();
        for (i, c) in model.constraints.iter().enumerate() {
            let sc = match c.cmp {
                Cmp::Le => 1.0,
                Cmp::Ge => -1.0,
                Cmp::Eq => continue,
            };
            slack_row.push(i);
            slack_sign.push(sc);
            slack_int.push(
                is_int(c.rhs)
                    && c.expr
                        .terms
                        .iter()
                        .all(|&(v, a)| integral[v.index()] && is_int(a)),
            );
        }
        let core = n + slack_row.len();

        // Candidate rows: basic structural integral variable at a usefully
        // fractional value (the cut's violation at the current vertex is
        // exactly `f₀`). Most-violated first, row index breaking ties, so
        // the strongest rounding cuts come out under `max_cuts`.
        let mut cand: Vec<(f64, usize)> = (0..tab.m)
            .filter_map(|r| {
                let b = tab.basis[r];
                if b >= n || !integral[b] || !is_int(self.lo[b]) {
                    return None;
                }
                let f0 = frac_of(tab.rhs(r));
                // `f₀` is the cut's violation, so small `f₀` means a weak
                // cut — but *large* `f₀` is a strong one, only rejected in
                // the last 1e-4 where `b̄` is integral up to tolerance and
                // the "cut" would be slicing off rounding noise.
                (f0 >= MIN_FRAC && f0 <= 1.0 - 1e-4).then(|| (f0, r))
            })
            .collect();
        cand.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut out = Vec::new();
        'rows: for &(_, r) in &cand {
            if out.len() >= max_cuts {
                break;
            }
            let f0 = frac_of(tab.rhs(r));
            let ratio = f0 / (1.0 - f0);
            // x-space accumulation of `Σ φ_j t_j ≥ f₀`: coefficient per
            // variable plus the folded constant, deterministic order.
            let mut w: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
            let mut consts = 0.0f64;
            for j in 0..tab.ncols {
                if j >= core || tab.status[j] == ColStatus::Basic {
                    continue;
                }
                let a = tab.at(r, j);
                if a.abs() <= COEF_EPS {
                    continue;
                }
                let at_upper = tab.status[j] == ColStatus::Upper;
                let g = if at_upper { -a } else { a };
                let t_integer = if j < n {
                    integral[j] && is_int(if at_upper { self.hi[j] } else { self.lo[j] })
                } else {
                    slack_int[j - n]
                };
                let phi = if t_integer {
                    let fj = frac_of(g);
                    if fj <= f0 + INT_TOL {
                        fj
                    } else {
                        ratio * (1.0 - fj)
                    }
                } else if g > 0.0 {
                    g
                } else {
                    ratio * -g
                };
                if phi <= COEF_EPS {
                    continue;
                }
                if j < n {
                    if at_upper {
                        // φ·t = φ·hi − φ·x.
                        *w.entry(j as u32).or_default() -= phi;
                        consts += phi * self.hi[j];
                    } else {
                        // φ·t = φ·x − φ·lo.
                        *w.entry(j as u32).or_default() += phi;
                        consts -= phi * self.lo[j];
                    }
                } else {
                    // φ·u = φ·sc·(rhs_i − a_i·x).
                    let i = slack_row[j - n];
                    let sc = slack_sign[j - n];
                    let c = &model.constraints[i];
                    consts += phi * sc * c.rhs;
                    for &(v, aik) in &c.expr.terms {
                        *w.entry(v.index() as u32).or_default() -= phi * sc * aik;
                    }
                }
            }
            // `Σ w·x ≥ f₀ − consts`, negated to the pool's Le form, then
            // canonicalized: tableau arithmetic leaves 1e-13-jittered
            // copies of what are mathematically small-integer coefficients,
            // and those jitters both evade the pool's content-key dedup
            // (near-identical cuts pile up) and seed tiny pivots in every
            // later repair. Coefficients within `SNAP_EPS` of an integer
            // snap to it and near-zero ones drop, each time relaxing the
            // rhs by the perturbation's worst-case contribution over the
            // box — the cut only ever gets *weaker*, so validity is
            // preserved; an unbounded variable under a perturbed term
            // vetoes the cut instead.
            let mut rhs = consts - f0;
            let mut terms: Vec<(crate::VarId, f64)> = Vec::new();
            for (&j, &wj) in &w {
                let c = -wj;
                let snapped = c.round();
                let d = (c - snapped).abs();
                let c = if d <= SNAP_EPS { snapped } else { c };
                let slop = if d <= SNAP_EPS && d > 0.0 {
                    let ji = j as usize;
                    let bnd = self.lo[ji].abs().max(self.hi[ji].abs());
                    if !bnd.is_finite() {
                        continue 'rows;
                    }
                    d * bnd
                } else {
                    0.0
                };
                rhs += slop;
                if c.abs() > DROP_EPS {
                    terms.push((crate::VarId(j), c));
                }
            }
            // Raising the rhs to a nearby integer is a further weakening.
            if (rhs.round() - rhs) >= 0.0 && (rhs.round() - rhs) <= SNAP_EPS {
                rhs = rhs.round();
            }
            if terms.is_empty() || terms.len() > max_terms {
                continue;
            }
            // Quality gates. Efficacy: the cut's violation at the current
            // vertex is `f₀`; normalized by the coefficient norm it is the
            // euclidean distance the cut pushes the vertex — near-parallel
            // dense rows that barely move the relaxation are rejected.
            // Dynamism: rows mixing huge and tiny coefficients make every
            // later LP numerically fragile (tiny pivots, stalled repairs),
            // costing far more than their bound contribution is worth.
            let norm = terms.iter().map(|&(_, c)| c * c).sum::<f64>().sqrt();
            if f0 / norm < MIN_EFFICACY {
                continue;
            }
            let maxc = terms.iter().map(|&(_, c)| c.abs()).fold(0.0, f64::max);
            let minc = terms
                .iter()
                .map(|&(_, c)| c.abs())
                .fold(f64::INFINITY, f64::min);
            if maxc / minc > MAX_DYNAMISM {
                continue;
            }
            // Canonical scale: normalize so the largest |coefficient| is 1
            // and round everything onto a fixed grid (rhs always rounded
            // *up*, coefficient perturbations again paid for through the
            // rhs). Cuts that are mathematically equal but were read off
            // different tableau rows with different last-bit noise now
            // serialize identically — the pool's content-key dedup works.
            let scale = 1.0 / maxc;
            let mut slop = 0.0f64;
            for (v, c) in &mut terms {
                let s = *c * scale;
                let g = (s * GRID).round() / GRID;
                let d = (s - g).abs();
                if d > 0.0 {
                    let ji = v.index();
                    let bnd = self.lo[ji].abs().max(self.hi[ji].abs());
                    if !bnd.is_finite() {
                        continue 'rows;
                    }
                    slop += d * bnd;
                }
                *c = g;
            }
            let rhs = ((rhs * scale + slop) * GRID).ceil() / GRID;
            out.push((terms, rhs));
        }
        out
    }

    /// Applies a batch of bound tightenings in place and re-optimizes with
    /// dual simplex. Bounds outside the current box are clamped inward
    /// (this entry point can only tighten); an empty domain reports
    /// [`DiveStep::Infeasible`] without touching the tableau further.
    ///
    /// `model` is only consulted for the objective evaluation of the
    /// extracted solution.
    pub fn tighten(&mut self, changes: &[(crate::VarId, f64, f64)], model: &Model) -> DiveStep {
        self.tighten_capped(changes, model, usize::MAX)
    }

    /// [`DiveTableau::tighten`] with a cap on the dual-repair pivots —
    /// strong-branching probes bound their per-probe effort this way and
    /// accept [`DiveStep::Stalled`] (no estimate) past the cap.
    pub fn tighten_capped(
        &mut self,
        changes: &[(crate::VarId, f64, f64)],
        model: &Model,
        max_repair_pivots: usize,
    ) -> DiveStep {
        for &(v, new_lo, new_hi) in changes {
            let j = v.index();
            // lint:allow(D-04) an out-of-range index panics on the slice reads two lines down in release too
            debug_assert!(j < self.n, "tighten targets a structural variable");
            let cur_lo = self.lo[j];
            let cur_hi = self.hi[j];
            let new_lo = new_lo.max(cur_lo);
            let new_hi = new_hi.min(cur_hi);
            if new_lo > new_hi {
                return DiveStep::Infeasible;
            }
            if !new_lo.is_finite() {
                // A non-finite lower bound would poison every later rank-1
                // RHS update; refuse the step rather than corrupt the dive.
                return DiveStep::Stalled;
            }
            let d = new_lo - cur_lo;
            let at_upper = self.tab.status[j] == ColStatus::Upper;
            if d > 0.0 && !at_upper {
                // Re-shift: the column's zero point moves up by `d`.
                self.tab.fold_rhs_scaled(j, -d);
            }
            if cur_hi.is_finite() {
                let e = cur_hi - new_hi;
                if e > 0.0 && at_upper {
                    // The at-upper value slides down with its bound.
                    self.tab.fold_rhs_scaled(j, e);
                }
            }
            self.lo[j] = new_lo;
            self.hi[j] = new_hi;
            self.tab.range[j] = new_hi - new_lo;
        }
        if !self.tab.primal_feasible() {
            let budget = (50 * (self.tab.m + self.tab.ncols) + 1000).min(max_repair_pivots);
            match self.tab.dual_optimize_capped(budget) {
                Ok(DualStatus::Feasible) => {}
                Ok(DualStatus::Infeasible) => return DiveStep::Infeasible,
                Ok(DualStatus::Stalled) | Err(PivotStall) => return DiveStep::Stalled,
            }
        }
        DiveStep::Optimal(self.solution(model))
    }

    /// Extracts the structural solution of the current (primal-feasible)
    /// tableau.
    fn solution(&self, model: &Model) -> Solution {
        let tab = &self.tab;
        let mut shifted = vec![0.0f64; tab.ncols];
        for (j, &s) in tab.status.iter().enumerate() {
            if s == ColStatus::Upper {
                shifted[j] = tab.range[j];
            }
        }
        for r in 0..tab.m {
            let b = tab.basis[r];
            if b < tab.ncols {
                shifted[b] = tab.rhs(r);
            }
        }
        let values: Vec<f64> = (0..self.n).map(|i| self.lo[i] + shifted[i]).collect();
        let objective = model.objective.eval(&values);
        Solution { values, objective }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    fn optimal(m: &Model) -> Solution {
        match solve_relaxation(m) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2; optimum at (2, 2) = 10
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y));
        let s = optimal(&m);
        assert!((s.objective - 10.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_max_with_variable_bounds() {
        // Same optimum but x ≤ 2 expressed as a *bound*: the tableau must
        // contain a single structural row.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y));
        assert_eq!(tableau_shape(&m), (1, 3));
        let s = optimal(&m);
        assert!((s.objective - 10.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pure_box_lp_solves_by_bound_flips() {
        // No constraints at all: the optimum is a box vertex reached purely
        // by bound flips (zero rows, zero pivots).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, -1.0, 3.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 5.0);
        m.set_objective(LinExpr::from(x) + (-2.0, y));
        assert_eq!(tableau_shape(&m), (0, 2));
        let s = optimal(&m);
        assert!((s.values[0] - 3.0).abs() < 1e-9);
        assert!(s.values[1].abs() < 1e-9);
        assert!((s.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn simple_min_with_ge() {
        // min x + y s.t. x + 2y >= 6, 3x + y >= 6 -> (1.2, 2.4), obj 3.6
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + (2.0, y), Cmp::Ge, 6.0);
        m.add_constraint(LinExpr::from(x) * 3.0 + y, Cmp::Ge, 6.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 3.6).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Eq, 5.0);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 3.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_infeasible_against_bounds() {
        // The infeasibility comes from a *bound*, not a row: x ≤ 3 as a
        // bound with the row x ≥ 5.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 3.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Le, 1.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -3 with x in [-5, 5]
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, -5.0, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, -3.0);
        m.set_objective(LinExpr::from(x));
        let s = optimal(&m);
        assert!((s.values[0] + 3.0).abs() < 1e-6, "got {}", s.values[0]);
    }

    #[test]
    fn negative_rhs_rows() {
        // x + y >= -1 is vacuous for x,y >= 0; max x + y <= 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, -1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 2.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 3.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-like degenerate structure; mostly a termination test.
        let mut m = Model::new(Sense::Maximize);
        let n = 6;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, f64::INFINITY))
            .collect();
        for i in 0..n {
            let mut e = LinExpr::new();
            for (j, item) in vars.iter().enumerate().take(i) {
                e = e + (2.0f64.powi((i - j) as i32 + 1), *item);
            }
            e = e + vars[i];
            m.add_constraint(e, Cmp::Le, 5.0f64.powi(i as i32 + 1));
        }
        let mut obj = LinExpr::new();
        for (j, v) in vars.iter().enumerate() {
            obj = obj + (2.0f64.powi((n - 1 - j) as i32), *v);
        }
        m.set_objective(obj);
        let s = optimal(&m);
        assert!((s.objective - 5.0f64.powi(n as i32)).abs() / 5.0f64.powi(n as i32) < 1e-6);
    }

    #[test]
    fn solution_satisfies_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 7.5);
        let y = m.add_var("y", VarKind::Continuous, 1.0, 4.0);
        let z = m.add_var("z", VarKind::Continuous, -2.0, 2.0);
        m.add_constraint(LinExpr::from(x) + (2.0, y) + (-1.0, z), Cmp::Le, 9.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.5);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = optimal(&m);
        assert!(m.check_feasible(&s.values, 1e-5).is_ok());
    }

    #[test]
    fn no_bound_rows_in_standard_form() {
        // Three bounded variables, two structural rows: the bounded form
        // must have exactly 2 rows; the reference form carries the bound
        // rows (2 + 3) with their slacks.
        let m = bounded_model();
        assert_eq!(m.num_constraints(), 2);
        let (rows, cols) = tableau_shape(&m);
        assert_eq!(rows, 2);
        assert_eq!(cols, 3 + 2); // structural + one slack per Le row
        let (ref_rows, ref_cols) = crate::reference::tableau_shape(&m);
        assert_eq!(ref_rows, 5);
        assert_eq!(ref_cols, 3 + 5);
    }

    // ---- warm-start coverage ----

    /// A model with all-finite bounds (the B&B shape) to exercise the warm
    /// path: max 3x + 2y + z s.t. x + y + z <= 10, x + 2y <= 8.
    fn bounded_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 6.0);
        let z = m.add_var("z", VarKind::Continuous, 0.0, 6.0);
        m.add_constraint(LinExpr::from(x) + y + z, Cmp::Le, 10.0);
        m.add_constraint(LinExpr::from(x) + (2.0, y), Cmp::Le, 8.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y) + z);
        m
    }

    fn warm_optimal(m: &Model, hint: Option<&Basis>) -> (Solution, Option<Basis>) {
        match solve_with_basis(m, hint) {
            (LpOutcome::Optimal(s), b) => (s, b),
            (other, _) => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn cold_solve_exports_reusable_basis() {
        let m = bounded_model();
        let (s1, basis) = warm_optimal(&m, None);
        let basis = basis.expect("bounded model exports a basis");
        // Re-solving the identical model from its own basis is the
        // zero-pivot fast path and must reproduce the optimum.
        let (s2, _) = warm_optimal(&m, Some(&basis));
        assert!((s1.objective - s2.objective).abs() < 1e-9);
        assert_eq!(s1.values.len(), s2.values.len());
    }

    #[test]
    fn warm_start_matches_cold_after_bound_tightening() {
        let m = bounded_model();
        let (cold_parent, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        // Tighten x's upper bound below its optimal value — exactly what a
        // branch-and-bound "down" child does.
        for new_hi in [5.0, 4.0, 2.0, 1.0, 0.0] {
            let mut child = m.clone();
            child.set_bounds(crate::VarId(0), 0.0, new_hi);
            let (warm, _) = warm_optimal(&child, Some(&basis));
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "hi={new_hi}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(child.check_feasible(&warm.values, 1e-6).is_ok());
            // the tightened child can never beat the parent
            assert!(warm.objective <= cold_parent.objective + 1e-9);
        }
    }

    #[test]
    fn warm_start_matches_cold_after_lower_bound_raise() {
        let m = bounded_model();
        let (_, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        for new_lo in [1.0, 2.0, 3.0] {
            let mut child = m.clone();
            child.set_bounds(crate::VarId(1), new_lo, 6.0);
            let (warm, _) = warm_optimal(&child, Some(&basis));
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "lo={new_lo}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
        // y >= 5 forces x + 2y >= 10 > 8: warm and cold must both say
        // infeasible.
        let mut child = m.clone();
        child.set_bounds(crate::VarId(1), 5.0, 6.0);
        let (out, _) = solve_with_basis(&child, Some(&basis));
        assert!(matches!(out, LpOutcome::Infeasible), "got {out:?}");
        assert!(matches!(solve_relaxation(&child), LpOutcome::Infeasible));
    }

    #[test]
    fn warm_start_detects_infeasible_child() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 8.0);
        m.set_objective(LinExpr::from(x) + y);
        let (_, basis) = warm_optimal(&m, None);
        // x <= 3, y <= 3 cannot reach x + y >= 8.
        let mut child = m.clone();
        child.set_bounds(crate::VarId(0), 0.0, 3.0);
        child.set_bounds(crate::VarId(1), 0.0, 3.0);
        let (out, _) = solve_with_basis(&child, basis.as_ref());
        assert!(matches!(out, LpOutcome::Infeasible), "got {out:?}");
        // cold agrees
        assert!(matches!(solve_relaxation(&child), LpOutcome::Infeasible));
    }

    #[test]
    fn mismatched_basis_falls_back_to_cold() {
        let m = bounded_model();
        let (_, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        // A different model (extra constraint => different row count): the
        // hint must be rejected, not crash or corrupt the answer.
        let mut other = bounded_model();
        other.add_constraint(
            LinExpr::from(crate::VarId(0)) + crate::VarId(1),
            Cmp::Le,
            7.0,
        );
        let (warm, _) = warm_optimal(&other, Some(&basis));
        let (cold, _) = warm_optimal(&other, None);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_chain_over_many_tightenings() {
        // Chained warm starts (basis of each solve feeds the next) across a
        // sweep of bound tightenings — the exact access pattern of a DFS
        // dive in branch-and-bound.
        let m = bounded_model();
        let (_, mut basis) = warm_optimal(&m, None);
        let mut child = m.clone();
        for step in 0..5 {
            let hi = 5.0 - step as f64;
            child.set_bounds(crate::VarId(2), 0.0, hi);
            let (warm, next) = warm_optimal(&child, basis.as_ref());
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "step {step}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = next.or(basis);
        }
    }

    #[test]
    fn warm_start_preserves_at_upper_statuses() {
        // At the parent optimum of `bounded_model` x sits at its upper
        // bound (x = 6 would violate x + 2y ≤ 8 with y = 1 → x = 6, y = 1,
        // z = 3 is the optimum, x basic or at-upper depending on pivoting).
        // Whatever the exported statuses are, replaying them on the
        // unchanged model must hit the zero-pivot fast path and agree.
        let m = bounded_model();
        let (cold, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        let (out, _, stats) = solve_with_basis_stats(&m, Some(&basis));
        let LpOutcome::Optimal(warm) = out else {
            panic!("expected optimal");
        };
        assert!(stats.warm_hit);
        // Only the basis-reinstall pivots, nothing beyond.
        assert!(stats.pivots <= m.num_constraints());
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert_eq!(warm.values.len(), cold.values.len());
        for (a, b) in warm.values.iter().zip(&cold.values) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn pivot_and_flip_counters_report_work() {
        let m = bounded_model();
        let (out, _, stats) = solve_with_basis_stats(&m, None);
        assert!(matches!(out, LpOutcome::Optimal(_)));
        assert!(!stats.warm_hit);
        assert!(stats.pivots + stats.bound_flips > 0);
    }

    // ---- incremental dive tableau ----

    fn dive_tableau(m: &Model) -> (DiveTableau, Solution) {
        let (out, dt, _) = DiveTableau::new(m);
        let LpOutcome::Optimal(sol) = out else {
            panic!("expected optimal, got {out:?}");
        };
        (dt.expect("optimal solve keeps the tableau"), sol)
    }

    #[test]
    fn dive_tableau_matches_cold_solve_chain() {
        // A chain of upper-bound tightenings applied in place must track
        // fresh cold solves exactly — and perform zero pivots for the
        // reinstall that no longer exists (only the dual repair works).
        let m = bounded_model();
        let (mut dt, first) = dive_tableau(&m);
        let cold_first = optimal(&m);
        assert!((first.objective - cold_first.objective).abs() < 1e-9);
        let mut child = m.clone();
        for new_hi in [5.0, 4.0, 2.0, 1.0, 0.0] {
            child.set_bounds(crate::VarId(0), 0.0, new_hi);
            let step = dt.tighten(&[(crate::VarId(0), 0.0, new_hi)], &child);
            let DiveStep::Optimal(warm) = step else {
                panic!("expected optimal at hi={new_hi}, got {step:?}");
            };
            let cold = optimal(&child);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "hi={new_hi}: dive {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(child.check_feasible(&warm.values, 1e-6).is_ok());
            assert_eq!(dt.bounds(crate::VarId(0)), (0.0, new_hi));
        }
    }

    #[test]
    fn dive_tableau_lower_bound_raises() {
        let m = bounded_model();
        let (mut dt, _) = dive_tableau(&m);
        let mut child = m.clone();
        for new_lo in [1.0, 2.0, 3.0] {
            child.set_bounds(crate::VarId(1), new_lo, 6.0);
            let step = dt.tighten(&[(crate::VarId(1), new_lo, 6.0)], &child);
            let DiveStep::Optimal(warm) = step else {
                panic!("expected optimal at lo={new_lo}, got {step:?}");
            };
            let cold = optimal(&child);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "lo={new_lo}: dive {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
        // y >= 5 forces x + 2y >= 10 > 8: infeasible, like the cold solve.
        child.set_bounds(crate::VarId(1), 5.0, 6.0);
        let step = dt.tighten(&[(crate::VarId(1), 5.0, 6.0)], &child);
        assert!(matches!(step, DiveStep::Infeasible), "got {step:?}");
        assert!(matches!(solve_relaxation(&child), LpOutcome::Infeasible));
    }

    #[test]
    fn dive_tableau_batch_fix_detects_infeasible() {
        // x + y >= 8 with both fixed small: the batch tighten must report
        // infeasible exactly like a cold solve of the fixed model.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 8.0);
        m.set_objective(LinExpr::from(x) + y);
        let (mut dt, _) = dive_tableau(&m);
        let step = dt.tighten(&[(x, 0.0, 3.0), (y, 0.0, 3.0)], &m);
        assert!(matches!(step, DiveStep::Infeasible), "got {step:?}");
    }

    #[test]
    fn dive_tableau_clone_isolates_probes() {
        // Strong-branching probes clone the tableau; the original must be
        // unaffected by a probe's tightenings.
        let m = bounded_model();
        let (dt, base) = dive_tableau(&m);
        let mut probe = dt.clone();
        let mut child = m.clone();
        child.set_bounds(crate::VarId(0), 0.0, 1.0);
        let DiveStep::Optimal(probed) = probe.tighten(&[(crate::VarId(0), 0.0, 1.0)], &child)
        else {
            panic!("probe must stay optimal");
        };
        assert!(probed.objective < base.objective - 1e-6);
        // the original still reports the unrestricted optimum
        let mut dt2 = dt.clone();
        let DiveStep::Optimal(still) = dt2.tighten(&[], &m) else {
            panic!("no-op tighten stays optimal");
        };
        assert!((still.objective - base.objective).abs() < 1e-9);
        assert_eq!(dt.bounds(crate::VarId(0)), (0.0, 6.0));
    }

    #[test]
    fn dive_tableau_only_tightens() {
        // Bounds wider than the current box are clamped inward: the dive
        // tableau refuses to relax (callers snapshot via Clone instead).
        let m = bounded_model();
        let (mut dt, base) = dive_tableau(&m);
        let step = dt.tighten(&[(crate::VarId(0), -5.0, 50.0)], &m);
        let DiveStep::Optimal(s) = step else {
            panic!("clamped no-op must stay optimal");
        };
        assert!((s.objective - base.objective).abs() < 1e-9);
        assert_eq!(dt.bounds(crate::VarId(0)), (0.0, 6.0));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Brute-force GMI validity: on random small integer programs, no
        /// cut read off the optimal root tableau may exclude any
        /// integer-feasible point of the box.
        #[test]
        fn gomory_cuts_never_exclude_integer_points(
            bounds in proptest::array::uniform3((-3i64..=3, 0i64..=5)),
            cons in proptest::collection::vec(
                (proptest::array::uniform3(-3i64..=3), -8i64..=12, 0u8..=8), 1..4),
            obj in proptest::array::uniform3(-3i64..=3),
        ) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, w))| {
                    m.add_var(format!("x{i}"), VarKind::Integer, lo as f64, (lo + w) as f64)
                })
                .collect();
            for (coefs, rhs, cmp) in &cons {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                let cmp = match cmp % 3 {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                };
                m.add_constraint(e, cmp, *rhs as f64);
            }
            let mut o = LinExpr::new();
            for (i, &c) in obj.iter().enumerate() {
                o = o + (c as f64, vars[i]);
            }
            m.set_objective(o);

            let (outcome, dt, _) = DiveTableau::new(&m);
            if let (LpOutcome::Optimal(_), Some(dt)) = (outcome, dt) {
                let cuts = dt.gomory_cuts(&m, &[true, true, true], 8, 64);
                let rng: Vec<std::ops::RangeInclusive<i64>> = bounds
                    .iter()
                    .map(|&(lo, w)| lo..=(lo + w))
                    .collect();
                for x0 in rng[0].clone() {
                    for x1 in rng[1].clone() {
                        for x2 in rng[2].clone() {
                            let p = [x0 as f64, x1 as f64, x2 as f64];
                            if m.check_feasible(&p, 1e-6).is_err() {
                                continue;
                            }
                            for (terms, rhs) in &cuts {
                                let lhs: f64 =
                                    terms.iter().map(|&(v, c)| c * p[v.index()]).sum();
                                prop_assert!(
                                    lhs <= rhs + 1e-6,
                                    "cut {terms:?} <= {rhs} excludes feasible {p:?} (lhs {lhs})"
                                );
                            }
                        }
                    }
                }
            }
        }

        /// Pricing is a tie-breaking rule, not a semantics change: on random
        /// warm restarts after a bound tightening, dual steepest-edge and
        /// Dantzig leaving-row selection must reach the same outcome class
        /// and (when optimal) the same objective.
        #[test]
        fn dse_and_dantzig_agree_on_warm_restarts(
            bounds in proptest::array::uniform3((-4i64..=4, 1i64..=6)),
            cons in proptest::collection::vec(
                (proptest::array::uniform3(-3i64..=3), -8i64..=16, 0u8..=8), 1..5),
            obj in proptest::array::uniform3(-4i64..=4),
            tighten_var in 0usize..3,
        ) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, w))| {
                    m.add_var(format!("x{i}"), VarKind::Continuous, lo as f64, (lo + w) as f64)
                })
                .collect();
            for (coefs, rhs, cmp) in &cons {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                let cmp = match cmp % 3 {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                };
                m.add_constraint(e, cmp, *rhs as f64);
            }
            let mut o = LinExpr::new();
            for (i, &c) in obj.iter().enumerate() {
                o = o + (c as f64, vars[i]);
            }
            m.set_objective(o);

            let (root, basis) = solve_with_basis(&m, None);
            if let (LpOutcome::Optimal(_), Some(basis)) = (&root, basis) {
                // Shrink one variable's box around an interior slice, as a
                // branching step would, so the warm path has repair work.
                let (lo, w) = bounds[tighten_var];
                let mid = lo as f64 + w as f64 / 2.0;
                m.set_bounds(vars[tighten_var], lo as f64, mid.floor().max(lo as f64));
                let (a, _, sa) =
                    solve_with_basis_pricing(&m, Some(&basis), Pricing::Dantzig);
                let (b, _, sb) =
                    solve_with_basis_pricing(&m, Some(&basis), Pricing::DualSteepestEdge);
                // Dantzig never charges steepest-edge pivots; DSE only ever
                // charges them on its warm dual-repair path.
                prop_assert_eq!(sa.dse_pivots, 0);
                prop_assert!(sb.warm_hit || sb.dse_pivots == 0);
                match (&a, &b) {
                    (LpOutcome::Optimal(x), LpOutcome::Optimal(y)) => prop_assert!(
                        (x.objective - y.objective).abs() < 1e-6,
                        "pricing changed the optimum: dantzig {} vs dse {}",
                        x.objective, y.objective
                    ),
                    (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                    (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                    (a, b) => prop_assert!(
                        false,
                        "pricing changed the outcome class: dantzig {a:?} vs dse {b:?}"
                    ),
                }
            }
        }
    }
}
