//! Two-phase dense primal simplex with warm-started re-solves.
//!
//! The models produced by the register-saturation formulations are small
//! (hundreds of rows and columns), dense-tableau simplex is the simplest
//! correct implementation at that scale, and determinism falls out for free.
//!
//! Conversion to standard form:
//! 1. every variable is shifted by its (finite) lower bound, so all
//!    structural variables are `≥ 0`;
//! 2. finite upper bounds become explicit `x ≤ range` rows;
//! 3. `≤` / `≥` rows receive slack / surplus variables, negative right-hand
//!    sides are negated, and rows without a ready basic column receive an
//!    artificial variable;
//! 4. phase 1 minimizes the artificial sum (infeasible iff it stays
//!    positive), phase 2 optimizes the true objective.
//!
//! Anti-cycling: Dantzig pricing normally, with a permanent switch to
//! Bland's rule after an iteration budget proportional to the tableau size.
//!
//! ## Warm starts
//!
//! Branch-and-bound children differ from their parent by a single bound
//! change, so [`solve_with_basis`] accepts the parent's optimal [`Basis`]:
//! the child tableau is rebuilt, the hinted columns are pivoted back into
//! the basis (skipping phase 1 entirely), and the solve resumes with dual
//! simplex when the bound change made the basis primal-infeasible — the
//! typical one-bound-tightening case converges in a handful of pivots. Any
//! structural mismatch or numerical trouble falls back to the cold
//! two-phase path, so the warm entry point is never less robust than
//! [`solve_relaxation`].
//!
//! ## Pivot loop
//!
//! The pivot kernel is sparse-aware: the normalized pivot row is snapshot
//! into a scratch buffer together with its nonzero index mask, and each
//! eliminated row either walks only the nonzero columns or, when the pivot
//! row is dense, runs a contiguous `zip` loop that the compiler
//! autovectorizes (no per-element `row * width + col` indexing).

use crate::model::{Cmp, Model, Sense};
use crate::EPS;

/// Pivot elements smaller than this are refused: instead of dividing by a
/// near-zero (silent garbage in release builds), the solve reports
/// [`LpOutcome::PivotTooSmall`], or falls back to the cold path when warm
/// starting.
const PIVOT_MIN: f64 = 1e-11;

/// A feasible (optimal) LP solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Value per model variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
}

/// Result of an LP relaxation solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Proven optimal solution.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A pivot element fell below the numeric threshold and the solve was
    /// abandoned rather than risk a garbage result. Degenerate models fail
    /// soft with this outcome; callers treat it as "no answer", not as a
    /// verdict about the model.
    PivotTooSmall,
}

/// An exportable simplex basis: the basic column per standard-form row,
/// over the structural + slack columns (artificials are never exported).
///
/// Obtained from [`solve_with_basis`] and fed back as a warm-start hint for
/// a model with the same constraint structure (branch-and-bound children
/// qualify: bound tightenings change right-hand sides, not the row/column
/// layout).
#[derive(Clone, Debug)]
pub struct Basis {
    m: usize,
    /// Structural + slack column count the basis was exported against.
    ncols: usize,
    cols: Vec<usize>,
}

/// Internal soft error: a pivot element below [`PIVOT_MIN`].
struct PivotStall;

/// Outcome of the dual simplex repair loop.
enum DualStatus {
    /// Primal feasibility restored; the basis is optimal (the cost row was
    /// and stays dual feasible).
    Feasible,
    /// A row proves primal infeasibility.
    Infeasible,
    /// Iteration budget exhausted without convergence.
    Stalled,
}

struct Tableau {
    /// (m + 1) rows × (ncols + 1) columns, row-major; last row is the cost
    /// row, last column the right-hand side.
    t: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    /// Columns that may enter the basis (artificials are disabled after
    /// phase 1).
    allowed: Vec<bool>,
    /// Reused snapshot of the normalized pivot row.
    scratch_row: Vec<f64>,
    /// Reused nonzero-column mask of the pivot row.
    scratch_nz: Vec<u32>,
}

impl Tableau {
    fn new(m: usize, ncols: usize) -> Self {
        Tableau {
            t: vec![0.0; (m + 1) * (ncols + 1)],
            m,
            ncols,
            basis: vec![usize::MAX; m],
            allowed: vec![true; ncols],
            scratch_row: Vec::new(),
            scratch_nz: Vec::new(),
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * (self.ncols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.t[r * (self.ncols + 1) + c] = v;
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.ncols)
    }

    fn pivot(&mut self, row: usize, col: usize) -> Result<(), PivotStall> {
        let w = self.ncols + 1;
        let piv = self.at(row, col);
        if piv.abs() <= PIVOT_MIN {
            return Err(PivotStall);
        }
        // Normalize pivot row.
        let inv = 1.0 / piv;
        let rs = row * w;
        for x in &mut self.t[rs..rs + w] {
            *x *= inv;
        }
        // Snapshot the normalized pivot row and its nonzero columns so the
        // elimination below neither re-reads through `self.t` (which blocks
        // autovectorization) nor touches columns the pivot row cannot
        // change.
        let mut prow = std::mem::take(&mut self.scratch_row);
        let mut pnz = std::mem::take(&mut self.scratch_nz);
        prow.clear();
        prow.extend_from_slice(&self.t[rs..rs + w]);
        pnz.clear();
        for (j, &v) in prow.iter().enumerate() {
            if v.abs() > 1e-13 {
                pnz.push(j as u32);
            }
        }
        let dense = pnz.len() * 2 >= w;
        // Eliminate the column elsewhere.
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let or_s = r * w;
            let factor = self.t[or_s + col];
            if factor.abs() <= 1e-12 {
                continue;
            }
            let row_slice = &mut self.t[or_s..or_s + w];
            if dense {
                for (x, &p) in row_slice.iter_mut().zip(prow.iter()) {
                    *x -= factor * p;
                }
            } else {
                for &j in &pnz {
                    let j = j as usize;
                    row_slice[j] -= factor * prow[j];
                }
            }
            // Force exact zero in the pivot column for stability.
            self.t[or_s + col] = 0.0;
        }
        self.scratch_row = prow;
        self.scratch_nz = pnz;
        self.basis[row] = col;
        Ok(())
    }

    /// Lexicographic row comparison for the anti-cycling ratio test: is
    /// `row r / a_r` lexicographically smaller than `row lr / a_lr`? The
    /// lexicographic rule strictly decreases a lex-ordering of the basis at
    /// every degenerate pivot, so (unlike a tolerance-windowed Bland rule
    /// under floating-point drift) it cannot revisit a basis.
    fn lex_less_row(&self, r: usize, a_r: f64, lr: usize, a_lr: f64) -> bool {
        let w = self.ncols + 1;
        let (rs, ls) = (r * w, lr * w);
        for j in 0..w {
            let x = self.t[rs + j] / a_r;
            let y = self.t[ls + j] / a_lr;
            if (x - y).abs() > 1e-12 {
                return x < y;
            }
        }
        false
    }

    /// Runs the primal simplex loop on the current cost row (minimization).
    /// Returns `false` if unbounded.
    ///
    /// Anti-cycling: Dantzig pricing with a largest-pivot ratio tie-break
    /// normally; after an iteration budget proportional to the tableau
    /// size, a permanent switch to Bland entering + lexicographic leaving.
    /// A hard cap (the massively degenerate register-saturation phase-1
    /// systems can defeat tolerance-based rules) fails soft via
    /// [`PivotStall`] rather than looping forever.
    fn optimize(&mut self) -> Result<bool, PivotStall> {
        let iter_budget = 50 * (self.m + self.ncols) + 1000;
        let hard_cap = 4 * iter_budget;
        let mut iters = 0usize;
        loop {
            iters += 1;
            if iters > hard_cap {
                return Err(PivotStall);
            }
            let lex = iters > iter_budget;
            // Entering column.
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for j in 0..self.ncols {
                if !self.allowed[j] {
                    continue;
                }
                let rc = self.at(self.m, j);
                if lex {
                    // Bland entering: smallest index with negative cost.
                    if rc < -EPS {
                        enter = Some(j);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
            let Some(col) = enter else {
                return Ok(true); // optimal
            };
            // Ratio test. The rhs is clamped at zero: accumulated drift can
            // leave a basic value at -1e-13, and a negative ratio would
            // walk the iterate out of the feasible region.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.at(r, col);
                if a > 1e-9 {
                    let ratio = self.rhs(r).max(0.0) / a;
                    let better = match leave {
                        None => true,
                        Some(lr) => {
                            if ratio < best_ratio - 1e-12 {
                                true
                            } else if ratio > best_ratio + 1e-12 {
                                false
                            } else if lex {
                                self.lex_less_row(r, a, lr, self.at(lr, col))
                            } else {
                                // On ties take the larger pivot element for
                                // numerical stability.
                                a.abs() > self.at(lr, col).abs()
                            }
                        }
                    };
                    if better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col)?;
        }
    }

    /// Dual simplex repair: restores primal feasibility while keeping the
    /// cost row dual feasible. Precondition: all allowed reduced costs are
    /// `≥ -EPS`.
    fn dual_optimize(&mut self) -> Result<DualStatus, PivotStall> {
        let iter_budget = 50 * (self.m + self.ncols) + 1000;
        for _ in 0..iter_budget {
            // Leaving row: most negative right-hand side.
            let mut row: Option<usize> = None;
            let mut most_neg = -1e-9;
            for r in 0..self.m {
                let b = self.rhs(r);
                if b < most_neg {
                    most_neg = b;
                    row = Some(r);
                }
            }
            let Some(row) = row else {
                return Ok(DualStatus::Feasible);
            };
            // Entering column: dual ratio test over negative row entries.
            let mut col: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            let mut best_a = 0.0f64;
            for j in 0..self.ncols {
                if !self.allowed[j] {
                    continue;
                }
                let a = self.at(row, j);
                if a < -1e-9 {
                    let ratio = self.at(self.m, j).max(0.0) / -a;
                    if ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12 && a.abs() > best_a)
                    {
                        best_ratio = ratio;
                        best_a = a.abs();
                        col = Some(j);
                    }
                }
            }
            let Some(col) = col else {
                // The row reads x_B + Σ aⱼxⱼ = b < 0 with all aⱼ ≥ 0 over
                // nonnegative variables: infeasible.
                return Ok(DualStatus::Infeasible);
            };
            self.pivot(row, col)?;
        }
        Ok(DualStatus::Stalled)
    }

    /// Reduces the cost row against the current basis.
    fn reduce_cost_row(&mut self) {
        for r in 0..self.m {
            let b = self.basis[r];
            let coef = self.at(self.m, b);
            if coef.abs() > 1e-12 {
                for j in 0..=self.ncols {
                    let v = self.at(self.m, j) - coef * self.at(r, j);
                    self.set(self.m, j, v);
                }
                self.set(self.m, b, 0.0);
            }
        }
    }
}

/// One standard-form constraint row over shifted structural variables.
struct Row {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// The standard form shared by the cold and warm solve paths.
struct StdForm {
    n: usize,
    m: usize,
    lo: Vec<f64>,
    rows: Vec<Row>,
    n_slack: usize,
    slack_of_row: Vec<Option<(usize, f64)>>,
    row_sign: Vec<f64>,
    needs_artificial: Vec<bool>,
    n_art: usize,
}

fn std_form(model: &Model) -> StdForm {
    let n = model.num_vars();

    // Shifted variables: x = lo + x', x' >= 0; remember ranges.
    let lo: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).0)
        .collect();
    let hi: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).1)
        .collect();

    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for c in &model.constraints {
        let mut rhs = c.rhs;
        let mut coeffs = Vec::with_capacity(c.expr.terms.len());
        for &(v, coef) in &c.expr.terms {
            rhs -= coef * lo[v.index()];
            coeffs.push((v.index(), coef));
        }
        rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }
    for i in 0..n {
        if hi[i].is_finite() {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                cmp: Cmp::Le,
                rhs: hi[i] - lo[i],
            });
        }
    }

    let m = rows.len();
    // Column layout: [0, n) structural; then one slack/surplus per Le/Ge
    // row; then artificials as needed (cold path only).
    let mut slack_of_row: Vec<Option<(usize, f64)>> = Vec::with_capacity(m);
    let mut next = n;
    for r in &rows {
        match r.cmp {
            Cmp::Le => {
                slack_of_row.push(Some((next, 1.0)));
                next += 1;
            }
            Cmp::Ge => {
                slack_of_row.push(Some((next, -1.0)));
                next += 1;
            }
            Cmp::Eq => slack_of_row.push(None),
        }
    }
    let n_slack = next - n;

    // Negate rows with negative rhs (flips slack signs too); rows that do
    // not end up with a ready +1 basic column need an artificial.
    let mut needs_artificial: Vec<bool> = vec![false; m];
    let mut row_sign: Vec<f64> = vec![1.0; m];
    for (i, r) in rows.iter().enumerate() {
        let s = if r.rhs < 0.0 { -1.0 } else { 1.0 };
        row_sign[i] = s;
        let slack_coef = slack_of_row[i].map(|(_, c)| c * s);
        needs_artificial[i] = slack_coef != Some(1.0);
    }
    let n_art = needs_artificial.iter().filter(|&&b| b).count();

    StdForm {
        n,
        m,
        lo,
        rows,
        n_slack,
        slack_of_row,
        row_sign,
        needs_artificial,
        n_art,
    }
}

/// Fills the structural, slack, and rhs entries of a tableau whose column
/// count is at least `n + n_slack`.
fn fill_core(tab: &mut Tableau, sf: &StdForm) {
    let w = tab.ncols + 1;
    for (i, r) in sf.rows.iter().enumerate() {
        let s = sf.row_sign[i];
        for &(j, c) in &r.coeffs {
            tab.t[i * w + j] += c * s;
        }
        if let Some((sj, sc)) = sf.slack_of_row[i] {
            tab.t[i * w + sj] = sc * s;
        }
        tab.t[i * w + tab.ncols] = r.rhs * s;
    }
}

/// Installs the phase-2 cost row (minimization of the model objective over
/// the shifted structural variables).
fn set_phase2_cost(tab: &mut Tableau, model: &Model) {
    let minimize_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let m = tab.m;
    for j in 0..=tab.ncols {
        tab.set(m, j, 0.0);
    }
    for &(v, c) in &model.objective.terms {
        let j = v.index();
        let cur = tab.at(m, j);
        tab.set(m, j, cur + minimize_sign * c);
    }
}

/// Extracts the structural solution from an optimal tableau.
fn extract(tab: &Tableau, sf: &StdForm, model: &Model) -> Solution {
    let mut shifted = vec![0.0f64; tab.ncols];
    for r in 0..tab.m {
        let b = tab.basis[r];
        if b < tab.ncols {
            shifted[b] = tab.rhs(r);
        }
    }
    let values: Vec<f64> = (0..sf.n).map(|i| sf.lo[i] + shifted[i]).collect();
    let objective = model.objective.eval(&values);
    Solution { values, objective }
}

/// Exports the basis when it is artificial-free (it always is on the warm
/// path; a cold solve may leave a degenerate artificial basic).
fn export_basis(tab: &Tableau, sf: &StdForm) -> Option<Basis> {
    let core = sf.n + sf.n_slack;
    if tab.basis.iter().all(|&b| b < core) {
        Some(Basis {
            m: sf.m,
            ncols: core,
            cols: tab.basis.clone(),
        })
    } else {
        None
    }
}

/// Solves the LP relaxation of `model` (integrality is ignored).
pub fn solve_relaxation(model: &Model) -> LpOutcome {
    solve_with_basis(model, None).0
}

/// Solves the LP relaxation, optionally warm-starting from a [`Basis`]
/// exported by a previous solve of a structurally identical model (same
/// rows and columns; bound tightenings qualify). Returns the outcome and,
/// when optimal, the basis to seed the next solve with.
///
/// Fast path: if the hinted basis is still primal feasible and dual
/// feasible after the bound change, the solve finishes with **zero**
/// simplex pivots. A primal-infeasible hint is repaired by dual simplex;
/// anything else falls back to the cold two-phase solve.
pub fn solve_with_basis(model: &Model, hint: Option<&Basis>) -> (LpOutcome, Option<Basis>) {
    let sf = std_form(model);
    if let Some(h) = hint {
        if let Some(result) = warm_solve(model, &sf, h) {
            return result;
        }
    }
    cold_solve(model, &sf)
}

/// The warm path: rebuild the tableau without artificials, pivot the hinted
/// columns back into the basis, and resume. `None` means "fall back to the
/// cold path" (structural mismatch or numerical trouble) and is not a
/// verdict about the model.
fn warm_solve(model: &Model, sf: &StdForm, hint: &Basis) -> Option<(LpOutcome, Option<Basis>)> {
    let core = sf.n + sf.n_slack;
    if hint.m != sf.m || hint.ncols != core || hint.cols.len() != sf.m {
        return None;
    }
    let mut tab = Tableau::new(sf.m, core);
    fill_core(&mut tab, sf);

    // Re-install the hinted basis by Gaussian pivoting. The basis matrix is
    // nonsingular for the parent model and row sign flips preserve that,
    // but the fixed pairing order can still hit a small pivot — fall back
    // cold in that case.
    for r in 0..sf.m {
        let c = hint.cols[r];
        if c >= core || tab.at(r, c).abs() <= 1e-9 {
            return None;
        }
        tab.pivot(r, c).ok()?;
    }

    set_phase2_cost(&mut tab, model);
    tab.reduce_cost_row();

    let primal_feasible = (0..sf.m).all(|r| tab.rhs(r) >= -1e-9);
    if !primal_feasible {
        // Bound tightenings leave the parent's reduced costs intact, so the
        // cost row is normally still dual feasible and dual simplex repairs
        // feasibility in a few pivots. If dual feasibility was lost too,
        // the hint is useless: go cold.
        let dual_feasible = (0..core).all(|j| tab.at(sf.m, j) >= -EPS);
        if !dual_feasible {
            return None;
        }
        match tab.dual_optimize() {
            Ok(DualStatus::Feasible) => {}
            Ok(DualStatus::Infeasible) => return Some((LpOutcome::Infeasible, None)),
            Ok(DualStatus::Stalled) | Err(PivotStall) => return None,
        }
    }
    match tab.optimize() {
        Ok(true) => {
            let sol = extract(&tab, sf, model);
            let basis = export_basis(&tab, sf);
            Some((LpOutcome::Optimal(sol), basis))
        }
        Ok(false) => Some((LpOutcome::Unbounded, None)),
        Err(PivotStall) => None,
    }
}

/// The cold two-phase path.
fn cold_solve(model: &Model, sf: &StdForm) -> (LpOutcome, Option<Basis>) {
    let core = sf.n + sf.n_slack;
    let ncols = core + sf.n_art;
    let mut tab = Tableau::new(sf.m, ncols);
    fill_core(&mut tab, sf);
    {
        let w = ncols + 1;
        let mut art_next = core;
        for i in 0..sf.m {
            if sf.needs_artificial[i] {
                tab.t[i * w + art_next] = 1.0;
                tab.basis[i] = art_next;
                art_next += 1;
            } else {
                tab.basis[i] = sf.slack_of_row[i]
                    .expect("row without slack needs artificial")
                    .0;
            }
        }
    }

    // Phase 1: minimize the artificial sum. Cost row: 1 on artificials,
    // reduce against the artificial basis rows.
    if sf.n_art > 0 {
        let m = sf.m;
        for j in 0..ncols {
            tab.set(m, j, if j >= core { 1.0 } else { 0.0 });
        }
        tab.set(m, ncols, 0.0);
        for r in 0..m {
            if tab.basis[r] >= core {
                // subtract row r from cost row
                for j in 0..=ncols {
                    let v = tab.at(m, j) - tab.at(r, j);
                    tab.set(m, j, v);
                }
            }
        }
        match tab.optimize() {
            Ok(ok) => debug_assert!(ok, "phase 1 cannot be unbounded"),
            Err(PivotStall) => return (LpOutcome::PivotTooSmall, None),
        }
        let art_sum = -tab.rhs(m);
        if art_sum > 1e-6 {
            return (LpOutcome::Infeasible, None);
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for r in 0..sf.m {
            if tab.basis[r] >= core {
                let mut pivot_col = None;
                for j in 0..core {
                    if tab.at(r, j).abs() > 1e-9 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    if tab.pivot(r, j).is_err() {
                        return (LpOutcome::PivotTooSmall, None);
                    }
                }
                // else: the row is redundant; the artificial stays basic at 0
                // and its column stays disallowed, which is harmless.
            }
        }
        // Artificials may never re-enter.
        for j in core..ncols {
            tab.allowed[j] = false;
        }
    }

    set_phase2_cost(&mut tab, model);
    tab.reduce_cost_row();
    match tab.optimize() {
        Ok(true) => {
            let sol = extract(&tab, sf, model);
            let basis = export_basis(&tab, sf);
            (LpOutcome::Optimal(sol), basis)
        }
        Ok(false) => (LpOutcome::Unbounded, None),
        Err(PivotStall) => (LpOutcome::PivotTooSmall, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    fn optimal(m: &Model) -> Solution {
        match solve_relaxation(m) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2; optimum at (2, 2) = 10
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y));
        let s = optimal(&m);
        assert!((s.objective - 10.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_min_with_ge() {
        // min x + y s.t. x + 2y >= 6, 3x + y >= 6 -> (1.2, 2.4), obj 3.6
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + (2.0, y), Cmp::Ge, 6.0);
        m.add_constraint(LinExpr::from(x) * 3.0 + y, Cmp::Ge, 6.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 3.6).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Eq, 5.0);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 3.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Le, 1.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -3 with x in [-5, 5]
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, -5.0, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, -3.0);
        m.set_objective(LinExpr::from(x));
        let s = optimal(&m);
        assert!((s.values[0] + 3.0).abs() < 1e-6, "got {}", s.values[0]);
    }

    #[test]
    fn negative_rhs_rows() {
        // x + y >= -1 is vacuous for x,y >= 0; max x + y <= 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, -1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 2.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 3.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-like degenerate structure; mostly a termination test.
        let mut m = Model::new(Sense::Maximize);
        let n = 6;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, f64::INFINITY))
            .collect();
        for i in 0..n {
            let mut e = LinExpr::new();
            for (j, item) in vars.iter().enumerate().take(i) {
                e = e + (2.0f64.powi((i - j) as i32 + 1), *item);
            }
            e = e + vars[i];
            m.add_constraint(e, Cmp::Le, 5.0f64.powi(i as i32 + 1));
        }
        let mut obj = LinExpr::new();
        for (j, v) in vars.iter().enumerate() {
            obj = obj + (2.0f64.powi((n - 1 - j) as i32), *v);
        }
        m.set_objective(obj);
        let s = optimal(&m);
        assert!((s.objective - 5.0f64.powi(n as i32)).abs() / 5.0f64.powi(n as i32) < 1e-6);
    }

    #[test]
    fn solution_satisfies_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 7.5);
        let y = m.add_var("y", VarKind::Continuous, 1.0, 4.0);
        let z = m.add_var("z", VarKind::Continuous, -2.0, 2.0);
        m.add_constraint(LinExpr::from(x) + (2.0, y) + (-1.0, z), Cmp::Le, 9.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.5);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = optimal(&m);
        assert!(m.check_feasible(&s.values, 1e-5).is_ok());
    }

    // ---- warm-start coverage ----

    /// A model with all-finite bounds (the B&B shape) to exercise the warm
    /// path: max 3x + 2y + z s.t. x + y + z <= 10, x + 2y <= 8.
    fn bounded_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 6.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 6.0);
        let z = m.add_var("z", VarKind::Continuous, 0.0, 6.0);
        m.add_constraint(LinExpr::from(x) + y + z, Cmp::Le, 10.0);
        m.add_constraint(LinExpr::from(x) + (2.0, y), Cmp::Le, 8.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y) + z);
        m
    }

    fn warm_optimal(m: &Model, hint: Option<&Basis>) -> (Solution, Option<Basis>) {
        match solve_with_basis(m, hint) {
            (LpOutcome::Optimal(s), b) => (s, b),
            (other, _) => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn cold_solve_exports_reusable_basis() {
        let m = bounded_model();
        let (s1, basis) = warm_optimal(&m, None);
        let basis = basis.expect("bounded model exports a basis");
        // Re-solving the identical model from its own basis is the
        // zero-pivot fast path and must reproduce the optimum.
        let (s2, _) = warm_optimal(&m, Some(&basis));
        assert!((s1.objective - s2.objective).abs() < 1e-9);
        assert_eq!(s1.values.len(), s2.values.len());
    }

    #[test]
    fn warm_start_matches_cold_after_bound_tightening() {
        let m = bounded_model();
        let (cold_parent, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        // Tighten x's upper bound below its optimal value — exactly what a
        // branch-and-bound "down" child does.
        for new_hi in [5.0, 4.0, 2.0, 1.0, 0.0] {
            let mut child = m.clone();
            child.set_bounds(crate::VarId(0), 0.0, new_hi);
            let (warm, _) = warm_optimal(&child, Some(&basis));
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "hi={new_hi}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(child.check_feasible(&warm.values, 1e-6).is_ok());
            // the tightened child can never beat the parent
            assert!(warm.objective <= cold_parent.objective + 1e-9);
        }
    }

    #[test]
    fn warm_start_matches_cold_after_lower_bound_raise() {
        let m = bounded_model();
        let (_, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        for new_lo in [1.0, 2.0, 3.0] {
            let mut child = m.clone();
            child.set_bounds(crate::VarId(1), new_lo, 6.0);
            let (warm, _) = warm_optimal(&child, Some(&basis));
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "lo={new_lo}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
        // y >= 5 forces x + 2y >= 10 > 8: warm and cold must both say
        // infeasible.
        let mut child = m.clone();
        child.set_bounds(crate::VarId(1), 5.0, 6.0);
        let (out, _) = solve_with_basis(&child, Some(&basis));
        assert!(matches!(out, LpOutcome::Infeasible), "got {out:?}");
        assert!(matches!(solve_relaxation(&child), LpOutcome::Infeasible));
    }

    #[test]
    fn warm_start_detects_infeasible_child() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 8.0);
        m.set_objective(LinExpr::from(x) + y);
        let (_, basis) = warm_optimal(&m, None);
        // x <= 3, y <= 3 cannot reach x + y >= 8.
        let mut child = m.clone();
        child.set_bounds(crate::VarId(0), 0.0, 3.0);
        child.set_bounds(crate::VarId(1), 0.0, 3.0);
        let (out, _) = solve_with_basis(&child, basis.as_ref());
        assert!(matches!(out, LpOutcome::Infeasible), "got {out:?}");
        // cold agrees
        assert!(matches!(solve_relaxation(&child), LpOutcome::Infeasible));
    }

    #[test]
    fn mismatched_basis_falls_back_to_cold() {
        let m = bounded_model();
        let (_, basis) = warm_optimal(&m, None);
        let basis = basis.unwrap();
        // A different model (extra constraint => different row count): the
        // hint must be rejected, not crash or corrupt the answer.
        let mut other = bounded_model();
        other.add_constraint(
            LinExpr::from(crate::VarId(0)) + crate::VarId(1),
            Cmp::Le,
            7.0,
        );
        let (warm, _) = warm_optimal(&other, Some(&basis));
        let (cold, _) = warm_optimal(&other, None);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn warm_start_chain_over_many_tightenings() {
        // Chained warm starts (basis of each solve feeds the next) across a
        // sweep of bound tightenings — the exact access pattern of a DFS
        // dive in branch-and-bound.
        let m = bounded_model();
        let (_, mut basis) = warm_optimal(&m, None);
        let mut child = m.clone();
        for step in 0..5 {
            let hi = 5.0 - step as f64;
            child.set_bounds(crate::VarId(2), 0.0, hi);
            let (warm, next) = warm_optimal(&child, basis.as_ref());
            let (cold, _) = warm_optimal(&child, None);
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "step {step}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            basis = next.or(basis);
        }
    }
}
