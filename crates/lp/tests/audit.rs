//! Integration tests for the pre-solve static auditor
//! ([`rs_lp::audit`]): typed rejection of incoherent inputs through the
//! public solve API, and proof that auditing never perturbs the search
//! itself (identical nodes, digest, and optimum with the audit on/off).

use rs_lp::{
    solve, solve_resumable, AuditError, Cmp, LinExpr, MilpConfig, MilpError, Model,
    SearchCheckpoint, Sense, VarKind,
};

/// A 10-var integer program fractional enough to branch for a while —
/// interruptible at small node limits, so it yields checkpoints.
fn wide_model() -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..10)
        .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
        .collect();
    for k in 0..6 {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + (((i * 7 + k * 11) % 5 + 1) as f64, v);
        }
        m.add_constraint(e, Cmp::Le, (35 + 3 * k) as f64);
    }
    let mut obj = LinExpr::new();
    for (i, &v) in vars.iter().enumerate() {
        obj = obj + (((i * 13) % 7 + 1) as f64, v);
    }
    m.set_objective(obj);
    m
}

fn audited(on: bool) -> MilpConfig {
    MilpConfig {
        audit: on,
        ..MilpConfig::default()
    }
}

#[test]
fn nan_coefficient_model_is_rejected_with_typed_error() {
    let mut m = wide_model();
    m.add_constraint(LinExpr::new() + (f64::NAN, rs_lp::VarId(0)), Cmp::Le, 1.0);
    match solve(&m, &audited(true)) {
        Err(MilpError::Audit(AuditError::Row { row, .. })) => assert_eq!(row, 6),
        other => panic!("expected a typed Row audit error, got {other:?}"),
    }
}

#[test]
fn non_finite_rhs_is_rejected_before_any_search() {
    let mut m = wide_model();
    m.add_constraint(LinExpr::new() + rs_lp::VarId(1), Cmp::Ge, f64::NEG_INFINITY);
    assert!(matches!(
        solve(&m, &audited(true)),
        Err(MilpError::Audit(AuditError::Row { .. }))
    ));
}

#[test]
fn corrupted_checkpoint_is_a_typed_error_not_a_silent_cold_start() {
    // Interrupt a real solve to get a genuine (version- and
    // fingerprint-matching) checkpoint...
    let m = wide_model();
    let cfg = MilpConfig {
        node_limit: 1,
        ..audited(true)
    };
    let ck = solve_resumable(&m, &cfg, None)
        .checkpoint
        .expect("node_limit 1 must interrupt the wide model");

    // ...then corrupt one stored bit pattern (the pseudocost global sum
    // becomes NaN) through the JSON wire format, the way persisted state
    // actually gets damaged. The corruption leaves version, fingerprint,
    // and shape intact — exactly the case a structural filter waves
    // through and a silent cold start would mask.
    let json = ck.to_json();
    let at = json.find("\"glob_sum\":").expect("wire field present");
    let start = at + "\"glob_sum\":".len();
    let end = start + json[start..].find([',', '}']).expect("number is delimited");
    let tampered = format!("{}{}{}", &json[..start], f64::NAN.to_bits(), &json[end..]);
    let bad = SearchCheckpoint::from_json(&tampered).expect("shape still parses");
    assert!(
        bad.matches(&m, &audited(true)),
        "corruption must not change the fingerprint"
    );

    match solve_resumable(&m, &audited(true), Some(&bad)).result {
        Err(MilpError::Audit(AuditError::Checkpoint { what })) => {
            assert!(what.contains("pseudocost"), "unexpected detail: {what}")
        }
        other => panic!("expected a typed Checkpoint audit error, got {other:?}"),
    }
}

#[test]
fn fingerprint_mismatch_stays_a_silent_cold_start_even_with_audit_on() {
    // The audit tightens the *accepted*-checkpoint path only: a foreign
    // checkpoint (fingerprint mismatch) keeps the documented
    // robustness-over-strictness contract and cold-starts silently.
    let mut other = wide_model();
    other.add_constraint(LinExpr::new() + rs_lp::VarId(0), Cmp::Le, 3.0);
    let ck = solve_resumable(
        &other,
        &MilpConfig {
            node_limit: 1,
            ..audited(true)
        },
        None,
    )
    .checkpoint
    .expect("interrupt");
    let m = wide_model();
    let s = solve_resumable(&m, &audited(true), Some(&ck))
        .result
        .expect("cold start solves");
    assert!(!s.stats.resumed);
    assert!(s.stats.proven_optimal);
}

#[test]
fn audit_never_perturbs_the_search() {
    // nodes_invariant: the audited and unaudited solves must explore the
    // identical tree — same committed nodes, same trace digest, same
    // optimum — the audit is a pure pre-execution gate.
    let m = wide_model();
    let on = solve(&m, &audited(true)).expect("solvable");
    let off = solve(&m, &audited(false)).expect("solvable");
    assert!(on.stats.audited);
    assert!(!off.stats.audited);
    assert_eq!(on.stats.nodes, off.stats.nodes);
    assert_eq!(on.stats.trace_digest, off.stats.trace_digest);
    assert_eq!(on.objective, off.objective);
    assert_eq!(on.values, off.values);
}

#[test]
fn audited_resume_chain_still_matches_uninterrupted_run() {
    // The checkpoint audit must accept every checkpoint the solver
    // itself produces: chain interrupted solves to completion under
    // audit and compare against the one-shot run.
    let m = wide_model();
    let uninterrupted = solve(&m, &audited(true)).expect("solvable");
    let mut resume: Option<SearchCheckpoint> = None;
    let mut final_sol = None;
    for _ in 0..50 {
        let run = solve_resumable(
            &m,
            &MilpConfig {
                node_limit: resume.as_ref().map_or(2, |ck| ck.nodes() + 2),
                ..audited(true)
            },
            resume.as_ref(),
        );
        match run.checkpoint {
            Some(ck) => resume = Some(ck),
            None => {
                final_sol = Some(run.result.expect("chain completes"));
                break;
            }
        }
    }
    let chained = final_sol.expect("resume chain must finish within 50 legs");
    assert_eq!(chained.stats.trace_digest, uninterrupted.stats.trace_digest);
    assert_eq!(chained.stats.nodes, uninterrupted.stats.nodes);
    assert_eq!(chained.objective, uninterrupted.objective);
}
