#![forbid(unsafe_code)]
//! `rs-lint` CLI: scan the workspace, print findings, write the JSON
//! report, and exit nonzero when the gate fails.

use std::path::PathBuf;
use std::process::ExitCode;

use rs_lint::{scan_workspace, RULES};

const USAGE: &str = "\
rs-lint: workspace static-analysis pass for determinism & soundness invariants

USAGE:
    rs-lint --workspace [OPTIONS]

OPTIONS:
    --workspace        scan the workspace rooted at --root (or the cwd)
    --root <DIR>       workspace root to scan (default: current directory)
    --out <FILE>       JSON report path (default: results/lint.json)
    --deny             treat warnings as failures (CI mode)
    --list-rules       print the rule catalog and exit
    --quiet            suppress per-finding output, print the summary only
    -h, --help         show this help
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut out_path = PathBuf::from("results/lint.json");
    let mut deny = false;
    let mut quiet = false;
    let mut list_rules = false;
    let mut workspace = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny" => deny = true,
            "--quiet" => quiet = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root requires a directory"),
            },
            "--out" => match args.next() {
                Some(v) => out_path = PathBuf::from(v),
                None => return usage_error("--out requires a path"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }

    if list_rules {
        println!("{:<6} {:<6} rule", "id", "level");
        for r in RULES {
            println!(
                "{:<6} {:<6} {}  [{}]",
                r.id,
                r.severity.as_str(),
                r.title,
                r.scope
            );
        }
        return ExitCode::SUCCESS;
    }

    if !workspace {
        return usage_error("pass --workspace to scan (or --list-rules)");
    }

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("rs-lint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if !quiet {
        for f in &report.findings {
            println!(
                "{}:{}: {}[{}] {}",
                f.file,
                f.line,
                f.severity.as_str(),
                f.rule,
                f.message
            );
            if !f.snippet.is_empty() {
                println!("    | {}", f.snippet);
            }
        }
    }

    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("rs-lint: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("rs-lint: cannot write {}: {e}", out_path.display());
        return ExitCode::from(2);
    }

    let errors = report.errors();
    let warnings = report.warnings();
    println!(
        "rs-lint: {} files scanned, {} errors, {} warnings, {} allows ({})",
        report.files_scanned,
        errors,
        warnings,
        report.allows.len(),
        out_path.display()
    );

    let failed = errors > 0 || (deny && warnings > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("rs-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
