//! A hand-rolled token-level lexer for Rust source.
//!
//! Deliberately not a parser: the lint rules only need a faithful token
//! stream — identifiers, literals, and punctuation with line numbers —
//! where string/char literals, raw strings, raw identifiers, lifetimes,
//! and (nested) comments can never be mistaken for code. Everything the
//! rules match on (`debug_assert!`, `.unwrap()`, `HashMap`, `==` next to
//! a float literal, …) is a short token sequence, so no syntax tree is
//! required and the crate stays dependency-free.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers `r#x` lex as `x`).
    Ident,
    /// Integer literal (any base, with suffix).
    Int,
    /// Float literal (`1.0`, `1.`, `1e-7`, `1f64`, …).
    Float,
    /// String, raw-string, byte-string, or char literal. `text` holds the
    /// raw inner content (escapes unprocessed).
    Str,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators the rules care about (`==`,
    /// `!=`, `::`, `<=`, `>=`, `=>`, `->`, `&&`, `||`, `..`) are single
    /// tokens, everything else is one char.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// One `//` line comment (block comments are skipped: the inline
/// allowlist mechanism is line-comment only, so suppressions are always
/// visible next to the code they justify).
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    /// Comment body after the `//` (including any further `/` or `!`).
    pub text: String,
}

/// Lexer output: the token stream plus every line comment.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and line comments. Unterminated literals are
/// tolerated (the remainder of the file lexes as literal content): the
/// scanner must never panic on the code it audits.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..j].iter().collect(),
            });
            i = j;
            continue;
        }
        // Block comment, nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw strings, raw identifiers, byte strings / byte chars.
        if c == 'r' || c == 'b' {
            if let Some((tok, next_i, lines)) = lex_prefixed(&b, i, line) {
                push!(tok.0, tok.1, line);
                line += lines;
                i = next_i;
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            let (text, next_i, lines) = lex_quoted(&b, i + 1, '"');
            push!(TokKind::Str, text, line);
            line += lines;
            i = next_i;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: ident run not closed by a quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                if j >= n || b[j] != '\'' {
                    push!(TokKind::Lifetime, b[i + 1..j].iter().collect(), line);
                    i = j;
                    continue;
                }
            }
            let (text, next_i, lines) = lex_quoted(&b, i + 1, '\'');
            push!(TokKind::Str, text, line);
            line += lines;
            i = next_i;
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (kind, text, next_i) = lex_number(&b, i);
            push!(kind, text, line);
            i = next_i;
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            push!(TokKind::Ident, b[i..j].iter().collect(), line);
            i = j;
            continue;
        }
        // Punctuation, with the multi-char operators the rules match on.
        let two = if i + 1 < n { Some((c, b[i + 1])) } else { None };
        let op: Option<&str> = match two {
            Some(('=', '=')) => Some("=="),
            Some(('=', '>')) => Some("=>"),
            Some(('!', '=')) => Some("!="),
            Some((':', ':')) => Some("::"),
            Some(('<', '=')) => Some("<="),
            Some(('>', '=')) => Some(">="),
            Some(('-', '>')) => Some("->"),
            Some(('&', '&')) => Some("&&"),
            Some(('|', '|')) => Some("||"),
            Some(('.', '.')) => Some(".."),
            _ => None,
        };
        if let Some(op) = op {
            push!(TokKind::Punct, op.to_string(), line);
            i += 2;
            continue;
        }
        push!(TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// Lexes `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `br#"…"#`, or `b'…'`
/// starting at the `r`/`b` at index `i`. Returns `((kind, text), next
/// index, newline count)` or `None` when this is a plain identifier.
#[allow(clippy::type_complexity)]
fn lex_prefixed(b: &[char], i: usize, _line: u32) -> Option<((TokKind, String), usize, u32)> {
    let n = b.len();
    let c = b[i];
    let mut j = i + 1;
    if c == 'b' && j < n && b[j] == 'r' {
        j += 1; // br…
    }
    // Count raw hashes.
    let hash_start = j;
    while j < n && b[j] == '#' {
        j += 1;
    }
    let hashes = j - hash_start;
    if j < n && b[j] == '"' {
        // Raw (or plain byte) string: terminated by `"` + `hashes` × `#`.
        let mut k = j + 1;
        let mut lines = 0u32;
        let content_start = k;
        if hashes == 0 && c == 'b' && b[i + 1] == '"' {
            // b"…" uses ordinary escape rules.
            let (text, next_i, nl) = lex_quoted(b, content_start, '"');
            return Some(((TokKind::Str, text), next_i, nl));
        }
        while k < n {
            if b[k] == '\n' {
                lines += 1;
            }
            if b[k] == '"' {
                let mut h = 0usize;
                while h < hashes && k + 1 + h < n && b[k + 1 + h] == '#' {
                    h += 1;
                }
                if h == hashes {
                    let text: String = b[content_start..k].iter().collect();
                    return Some(((TokKind::Str, text), k + 1 + hashes, lines));
                }
            }
            k += 1;
        }
        let text: String = b[content_start..n].iter().collect();
        return Some(((TokKind::Str, text), n, lines));
    }
    if hashes > 0 && c == 'r' && j < n && is_ident_start(b[j]) {
        // Raw identifier r#ident: lexes as the bare identifier.
        let mut k = j;
        while k < n && is_ident_continue(b[k]) {
            k += 1;
        }
        let text: String = b[j..k].iter().collect();
        return Some(((TokKind::Ident, text), k, 0));
    }
    if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
        let (text, next_i, nl) = lex_quoted(b, i + 2, '\'');
        return Some(((TokKind::Str, text), next_i, nl));
    }
    if c == 'b' && i + 1 < n && b[i + 1] == '"' {
        let (text, next_i, nl) = lex_quoted(b, i + 2, '"');
        return Some(((TokKind::Str, text), next_i, nl));
    }
    None
}

/// Consumes an escaped literal starting just after the opening quote.
/// Returns `(inner text, index after closing quote, newline count)`.
fn lex_quoted(b: &[char], start: usize, quote: char) -> (String, usize, u32) {
    let n = b.len();
    let mut j = start;
    let mut lines = 0u32;
    while j < n {
        if b[j] == '\\' {
            j += 2;
            continue;
        }
        if b[j] == '\n' {
            lines += 1;
        }
        if b[j] == quote {
            return (b[start..j].iter().collect(), j + 1, lines);
        }
        j += 1;
    }
    (b[start..n].iter().collect(), n, lines)
}

/// Lexes a number starting at a digit. Returns `(kind, text, next index)`.
fn lex_number(b: &[char], i: usize) -> (TokKind, String, usize) {
    let n = b.len();
    let mut j = i;
    let mut float = false;
    if b[i] == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
        j = i + 2;
        while j < n && (b[j].is_ascii_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        return (TokKind::Int, b[i..j].iter().collect(), j);
    }
    while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
        j += 1;
    }
    // Fractional part: `1.0` and trailing `1.` are floats, but `1.x`
    // (field/method) and `1..2` (range) are not.
    if j < n && b[j] == '.' {
        let after = b.get(j + 1).copied();
        let method_or_range = after.is_some_and(|c| is_ident_start(c) || c == '.');
        if !method_or_range {
            float = true;
            j += 1;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Exponent.
    if j < n && matches!(b[j], 'e' | 'E') {
        let k = j + 1;
        let signed = k < n && matches!(b[k], '+' | '-');
        let digits_at = if signed { k + 1 } else { k };
        if digits_at < n && b[digits_at].is_ascii_digit() {
            float = true;
            j = digits_at;
            while j < n && (b[j].is_ascii_digit() || b[j] == '_') {
                j += 1;
            }
        }
    }
    // Suffix (`u32`, `f64`, …) — a float suffix makes it a float.
    let suffix_at = j;
    while j < n && is_ident_continue(b[j]) {
        j += 1;
    }
    let suffix: String = b[suffix_at..j].iter().collect();
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    let kind = if float { TokKind::Float } else { TokKind::Int };
    (kind, b[i..j].iter().collect(), j)
}

/// Token-index ranges `[start, end)` covering `#[cfg(test)]` / `#[test]`
/// items: the attribute and the braced body that follows it. Used to
/// exempt test code from the rules that only bind production paths.
/// `#[cfg(not(test))]` is recognized as *non*-test and never exempts.
pub fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let punct = |k: usize, s: &str| {
        toks.get(k)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == s)
    };
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(punct(i, "#") && punct(i + 1, "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute body for the `test` / `not` idents.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() && depth > 0 {
            let t = &toks[j];
            if t.kind == TokKind::Punct {
                if t.text == "[" {
                    depth += 1;
                } else if t.text == "]" {
                    depth -= 1;
                }
            } else if t.kind == TokKind::Ident {
                if t.text == "test" {
                    has_test = true;
                } else if t.text == "not" {
                    has_not = true;
                }
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut k = j;
        while punct(k, "#") && punct(k + 1, "[") {
            let mut d = 1usize;
            k += 2;
            while k < toks.len() && d > 0 {
                if punct(k, "[") {
                    d += 1;
                } else if punct(k, "]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        // Walk to the first top-level `{` (the body); a `;` first means a
        // body-less item (nothing to exempt).
        let mut pd = 0isize;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => pd += 1,
                    ")" | "]" => pd -= 1,
                    ";" if pd == 0 => break,
                    "{" if pd == 0 => {
                        let mut bd = 1usize;
                        k += 1;
                        while k < toks.len() && bd > 0 {
                            if punct(k, "{") {
                                bd += 1;
                            } else if punct(k, "}") {
                                bd -= 1;
                            }
                            k += 1;
                        }
                        out.push((i, k));
                        break;
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let l = lex("// debug_assert!(x)\nlet s = \"unwrap()\"; /* todo!() */");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("debug_assert"));
        let idents: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "s"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let t = texts(r##"let x = r#"a "quoted" body"#; let r#type = 1;"##);
        assert!(t.contains(&"a \"quoted\" body".to_string()));
        assert!(t.contains(&"type".to_string()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let strs = l.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn float_vs_int_vs_method() {
        let l = lex("a == 0.0; b == 1; c == 1.; d == 1e-7; t.0; 0..2; 5f64");
        let kinds: Vec<_> = l
            .toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(
            kinds,
            [
                (TokKind::Float, "0.0"),
                (TokKind::Int, "1"),
                (TokKind::Float, "1."),
                (TokKind::Float, "1e-7"),
                (TokKind::Int, "0"),
                (TokKind::Int, "0"),
                (TokKind::Int, "2"),
                (TokKind::Float, "5f64"),
            ]
        );
    }

    #[test]
    fn multichar_operators() {
        let t = texts("a == b != c :: d <= e >= f -> g => h && i || j");
        for op in ["==", "!=", "::", "<=", ">=", "->", "=>", "&&", "||"] {
            assert!(t.contains(&op.to_string()), "missing {op}");
        }
    }

    #[test]
    fn cfg_test_ranges_cover_mod_body() {
        let src =
            "fn prod() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n";
        let l = lex(src);
        let ranges = test_ranges(&l.toks);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        let covered: Vec<_> = l.toks[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(covered.contains(&"tests"));
        assert!(covered.contains(&"y"));
        assert!(!covered.contains(&"prod"));
    }

    #[test]
    fn cfg_not_test_is_not_exempt() {
        let src = "#[cfg(not(test))]\nmod prod { fn f() { x.unwrap(); } }\n";
        let l = lex(src);
        assert!(test_ranges(&l.toks).is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"a\nb\nc\";\nlet t = 1;";
        let l = lex(src);
        let t = l.toks.iter().find(|t| t.text == "t").expect("t token");
        assert_eq!(t.line, 4);
    }
}
