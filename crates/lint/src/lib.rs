#![forbid(unsafe_code)]
//! `rs-lint` — workspace static-analysis pass enforcing the determinism
//! and soundness invariants of the register-saturation solver stack.
//!
//! The deterministic B&B (trace digests, round-committed batches,
//! versioned checkpoints) relies on invariants that the compiler cannot
//! check: no map-iteration-order or wall-clock dependence on committed
//! paths, no raw float equality on solver values, no `debug_assert!`
//! guarding release-mode correctness, no panicking paths in the serve
//! request loop. This crate turns those reviewer-memory rules into a
//! machine-checked gate: a token-level scan over the workspace with a
//! stable rule catalog, structured JSON findings, and an explicit inline
//! allowlist so every suppression is visible and justified.
//!
//! Suppression syntax (same line as the finding, or the line directly
//! above it): a line comment containing the marker `lint:allow`
//! immediately followed by a parenthesized rule ID and a mandatory
//! free-text reason. Unknown rule IDs and empty reasons are themselves
//! findings (A-01), and allows that suppress nothing are flagged as
//! stale (A-02), so the allowlist cannot rot silently.

pub mod lexer;

use lexer::{lex, test_ranges, Tok, TokKind};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Severity of a rule. `Warn` findings only fail the run under `--deny`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warn,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
        }
    }
}

/// Static metadata for one rule in the catalog.
pub struct RuleInfo {
    pub id: &'static str,
    pub severity: Severity,
    pub title: &'static str,
    /// Where the rule binds (crates / paths / non-test only).
    pub scope: &'static str,
}

/// The rule catalog. IDs are stable: tooling and allow comments refer to
/// them, so existing IDs must never be renamed or reused.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D-01",
        severity: Severity::Error,
        title: "HashMap/HashSet in deterministic-search crates: iteration \
                order is nondeterministic; use BTreeMap/Vec or justify a \
                membership-only use",
        scope: "crates/lp, crates/core, crates/graph (non-test)",
    },
    RuleInfo {
        id: "D-02",
        severity: Severity::Error,
        title: "Instant::now/SystemTime::now in solver crates: wall-clock \
                reads must never feed trace_digest or committed-node state",
        scope: "crates/lp, crates/core (non-test; crates/lp/src/cancel.rs deadline layer exempt)",
    },
    RuleInfo {
        id: "D-03",
        severity: Severity::Warn,
        title: "raw float ==/!= on solver values: use the rs_lp tolerance \
                helpers (approx_eq/approx_zero/EPS) or justify exact-bit \
                comparison",
        scope: "crates/lp, crates/core (non-test)",
    },
    RuleInfo {
        id: "D-04",
        severity: Severity::Error,
        title: "debug_assert! in solver/serve code: if the condition guards \
                release-mode correctness it must be a real check or typed \
                error; otherwise justify why debug-only is sound",
        scope: "crates/lp, crates/core, crates/serve (non-test)",
    },
    RuleInfo {
        id: "S-01",
        severity: Severity::Error,
        title: ".unwrap()/.expect() on a serve request path: the server must \
                degrade to a typed RsError, never panic",
        scope: "crates/serve (non-test)",
    },
    RuleInfo {
        id: "S-02",
        severity: Severity::Error,
        title: "RsError built with a code outside the documented vocabulary \
                (usage, io, parse, request, version, panic, engine, \
                infeasible, timeout, overloaded)",
        scope: "workspace (non-test)",
    },
    RuleInfo {
        id: "H-01",
        severity: Severity::Error,
        title: "crate root missing #![forbid(unsafe_code)]",
        scope: "every non-vendor crate root (lib.rs / main.rs / src/bin)",
    },
    RuleInfo {
        id: "H-02",
        severity: Severity::Error,
        title: "todo!/unimplemented! outside tests",
        scope: "workspace (non-test)",
    },
    RuleInfo {
        id: "A-01",
        severity: Severity::Error,
        title: "malformed allow comment: unknown rule ID, missing closing \
                paren, or missing justification",
        scope: "workspace (all code)",
    },
    RuleInfo {
        id: "A-02",
        severity: Severity::Warn,
        title: "stale allow comment: suppresses no finding on its line or \
                the line below",
        scope: "workspace (all code)",
    },
];

/// Documented `RsError` code vocabulary. Mirrors
/// `rs_core::request::codes`; rs-lint is dependency-free by design, so
/// the list is duplicated here and S-02 plus the wire tests keep the two
/// in sync.
pub const CODE_VOCAB: &[&str] = &[
    "usage",
    "io",
    "parse",
    "request",
    "version",
    "panic",
    "engine",
    "infeasible",
    "timeout",
    "overloaded",
];

/// Looks up a rule by ID.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One finding: a rule violation at a specific file/line.
#[derive(Clone, Debug)]
pub struct Finding {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// One valid suppression found in the tree (valid ID + non-empty reason).
#[derive(Clone, Debug)]
pub struct Allow {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub reason: String,
    pub used: bool,
}

/// Lint result for one file.
#[derive(Debug, Default)]
pub struct FileLint {
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
}

/// Aggregated workspace report.
#[derive(Debug, Default)]
pub struct Report {
    pub root: String,
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub allows: Vec<Allow>,
}

impl Report {
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warn)
            .count()
    }

    /// Serializes the report as JSON (hand-rolled: the lint gate must not
    /// depend on anything it guards, including the vendored serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = write!(
            s,
            "  \"version\": 1,\n  \"root\": {},\n",
            json_str(&self.root)
        );
        let _ = write!(
            s,
            "  \"files_scanned\": {},\n  \"errors\": {},\n  \"warnings\": {},\n",
            self.files_scanned,
            self.errors(),
            self.warnings()
        );
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
                json_str(f.rule),
                json_str(f.severity.as_str()),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                json_str(&f.snippet)
            );
        }
        if !self.findings.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(a.rule),
                json_str(&a.file),
                a.line,
                json_str(&a.reason),
                a.used
            );
        }
        if !self.allows.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn json_str(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\t' => s.push_str("\\t"),
            '\r' => s.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    toks: &'a [Tok],
    lines: Vec<&'a str>,
    /// Per-token: inside a `#[cfg(test)]` / `#[test]` region.
    test_mask: Vec<bool>,
    /// Whole file is test/bench/example code by path.
    path_is_test: bool,
}

impl<'a> FileCtx<'a> {
    fn is_test(&self, tok_idx: usize) -> bool {
        self.path_is_test || self.test_mask.get(tok_idx).copied().unwrap_or(false)
    }

    fn crate_name(&self) -> &str {
        if let Some(rest) = self.rel.strip_prefix("crates/") {
            rest.split('/').next().unwrap_or("")
        } else {
            "root"
        }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

fn path_is_test(rel: &str) -> bool {
    let segs: Vec<&str> = rel.split('/').collect();
    segs.iter()
        .any(|s| *s == "tests" || *s == "benches" || *s == "examples")
}

fn is_crate_root(rel: &str) -> bool {
    if rel == "src/lib.rs" || rel == "src/main.rs" {
        return true;
    }
    if rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs") {
        return true;
    }
    // Every file under a src/bin/ directory is its own binary root.
    rel.contains("src/bin/") && rel.ends_with(".rs")
}

fn ident_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(toks: &[Tok], i: usize, text: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Lints one file given its workspace-relative path (forward slashes)
/// and source text. Public so fixture tests can lint synthetic files.
pub fn lint_source(rel: &str, src: &str) -> FileLint {
    let lexed = lex(src);
    let ranges = test_ranges(&lexed.toks);
    let mut mask = vec![false; lexed.toks.len()];
    for &(s, e) in &ranges {
        for m in mask.iter_mut().take(e).skip(s) {
            *m = true;
        }
    }
    let ctx = FileCtx {
        rel,
        toks: &lexed.toks,
        lines: src.lines().collect(),
        test_mask: mask,
        path_is_test: path_is_test(rel),
    };

    let mut findings = Vec::new();
    rule_d01(&ctx, &mut findings);
    rule_d02(&ctx, &mut findings);
    rule_d03(&ctx, &mut findings);
    rule_d04(&ctx, &mut findings);
    rule_s01(&ctx, &mut findings);
    rule_s02(&ctx, &mut findings);
    rule_h01(&ctx, &mut findings);
    rule_h02(&ctx, &mut findings);

    // Allow comments: parse, validate (A-01), apply, flag stale (A-02).
    let mut allows: Vec<Allow> = Vec::new();
    for c in &lexed.comments {
        let Some(pos) = c.text.find("lint:allow(") else {
            continue;
        };
        let after = &c.text[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            findings.push(Finding {
                rule: "A-01",
                severity: Severity::Error,
                file: rel.to_string(),
                line: c.line,
                message: "malformed allow comment: missing ')'".to_string(),
                snippet: ctx.snippet(c.line),
            });
            continue;
        };
        let id = after[..close].trim();
        let reason = after[close + 1..].trim();
        let Some(info) = rule(id) else {
            findings.push(Finding {
                rule: "A-01",
                severity: Severity::Error,
                file: rel.to_string(),
                line: c.line,
                message: format!("allow names unknown rule '{id}'"),
                snippet: ctx.snippet(c.line),
            });
            continue;
        };
        if reason.is_empty() {
            findings.push(Finding {
                rule: "A-01",
                severity: Severity::Error,
                file: rel.to_string(),
                line: c.line,
                message: format!("allow for {id} has no justification"),
                snippet: ctx.snippet(c.line),
            });
            continue;
        }
        allows.push(Allow {
            rule: info.id,
            file: rel.to_string(),
            line: c.line,
            reason: reason.to_string(),
            used: false,
        });
    }

    // A finding is suppressed by an allow for its rule on the same line
    // or the line directly above. A-01/A-02 are never suppressible.
    findings.retain(|f| {
        if f.rule == "A-01" {
            return true;
        }
        for a in allows.iter_mut() {
            if a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line) {
                a.used = true;
                return false;
            }
        }
        true
    });

    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: "A-02",
                severity: Severity::Warn,
                file: rel.to_string(),
                line: a.line,
                message: format!(
                    "stale allow: no {} finding on this or the next line",
                    a.rule
                ),
                snippet: ctx.snippet(a.line),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileLint { findings, allows }
}

fn push(ctx: &FileCtx, out: &mut Vec<Finding>, id: &'static str, line: u32, message: String) {
    let info = rule(id).expect("rule IDs pushed internally are always in the catalog");
    out.push(Finding {
        rule: info.id,
        severity: info.severity,
        file: ctx.rel.to_string(),
        line,
        message,
        snippet: ctx.snippet(line),
    });
}

/// D-01: HashMap/HashSet in deterministic-search crates.
fn rule_d01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.crate_name(), "lp" | "core" | "graph") {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.is_test(i)
        {
            push(
                ctx,
                out,
                "D-01",
                t.line,
                format!(
                    "{} in deterministic-search crate '{}': iteration order is \
                     nondeterministic across runs",
                    t.text,
                    ctx.crate_name()
                ),
            );
        }
    }
}

/// D-02: wall-clock reads in solver crates. The deadline layer
/// (crates/lp/src/cancel.rs) is the one sanctioned clock owner: it
/// feeds only cancellation, never the digest, and its determinism
/// contract is covered by the chaos/determinism smoke tests.
fn rule_d02(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.crate_name(), "lp" | "core") {
        return;
    }
    if ctx.rel == "crates/lp/src/cancel.rs" {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
            && punct_at(ctx.toks, i + 1, "::")
            && ident_at(ctx.toks, i + 2, "now")
            && !ctx.is_test(i)
        {
            push(
                ctx,
                out,
                "D-02",
                t.line,
                format!(
                    "{}::now() in solver crate '{}': wall-clock must not reach \
                     committed search state or trace_digest",
                    t.text,
                    ctx.crate_name()
                ),
            );
        }
    }
}

/// D-03: raw float equality on solver values. Flags `==`/`!=` where an
/// adjacent token is a float literal or an f32/f64 special constant.
fn rule_d03(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.crate_name(), "lp" | "core") {
        return;
    }
    let special = |t: &Tok| {
        t.kind == TokKind::Ident && matches!(t.text.as_str(), "NAN" | "INFINITY" | "NEG_INFINITY")
    };
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") || ctx.is_test(i) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| ctx.toks.get(p));
        let prev_hit = prev.is_some_and(|p| p.kind == TokKind::Float || special(p));
        let next_hit = ctx.toks[i + 1..]
            .iter()
            .take(3)
            .any(|n| n.kind == TokKind::Float || special(n));
        if prev_hit || next_hit {
            push(
                ctx,
                out,
                "D-03",
                t.line,
                format!(
                    "raw float {} on a solver value: use approx_eq/approx_zero \
                     (rs_lp) or justify exact-bit comparison",
                    t.text
                ),
            );
        }
    }
}

/// D-04: debug_assert! in solver/serve code.
fn rule_d04(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !matches!(ctx.crate_name(), "lp" | "core" | "serve") {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
            )
            && punct_at(ctx.toks, i + 1, "!")
            && !ctx.is_test(i)
        {
            push(
                ctx,
                out,
                "D-04",
                t.line,
                format!(
                    "{}! compiles out in release: promote to a real check/typed \
                     error if it guards correctness, or justify debug-only",
                    t.text
                ),
            );
        }
    }
}

/// S-01: unwrap/expect on serve request paths.
fn rule_s01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if ctx.crate_name() != "serve" {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && punct_at(ctx.toks, i.wrapping_sub(1), ".")
            && punct_at(ctx.toks, i + 1, "(")
            && !ctx.is_test(i)
        {
            push(
                ctx,
                out,
                "S-01",
                t.line,
                format!(
                    ".{}() on a serve path: the request loop must degrade to a \
                     typed RsError, never panic",
                    t.text
                ),
            );
        }
    }
}

/// S-02: RsError codes must come from the documented vocabulary. Checks
/// `RsError::new(<literal or codes::CONST>, ..)`; dynamic expressions
/// are out of reach for a token-level pass and are left to the wire
/// round-trip tests.
fn rule_s02(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident
            && t.text == "RsError"
            && punct_at(ctx.toks, i + 1, "::")
            && ident_at(ctx.toks, i + 2, "new")
            && punct_at(ctx.toks, i + 3, "(")
            && !ctx.is_test(i))
        {
            continue;
        }
        let arg = ctx.toks.get(i + 4);
        let bad: Option<String> = match arg {
            Some(a) if a.kind == TokKind::Str => {
                if CODE_VOCAB.contains(&a.text.as_str()) {
                    None
                } else {
                    Some(a.text.clone())
                }
            }
            Some(a) if a.kind == TokKind::Ident && a.text == "codes" => {
                if punct_at(ctx.toks, i + 5, "::") {
                    match ctx.toks.get(i + 6) {
                        Some(c) if c.kind == TokKind::Ident => {
                            let lower = c.text.to_lowercase();
                            if CODE_VOCAB.contains(&lower.as_str()) {
                                None
                            } else {
                                Some(c.text.clone())
                            }
                        }
                        _ => None,
                    }
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(code) = bad {
            push(
                ctx,
                out,
                "S-02",
                t.line,
                format!("RsError code '{code}' is not in the documented vocabulary"),
            );
        }
    }
}

/// H-01: crate roots must carry `#![forbid(unsafe_code)]`.
fn rule_h01(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !is_crate_root(ctx.rel) {
        return;
    }
    let toks = ctx.toks;
    let found = (0..toks.len()).any(|i| {
        punct_at(toks, i, "#")
            && punct_at(toks, i + 1, "!")
            && punct_at(toks, i + 2, "[")
            && ident_at(toks, i + 3, "forbid")
            && punct_at(toks, i + 4, "(")
            && ident_at(toks, i + 5, "unsafe_code")
    });
    if !found {
        push(
            ctx,
            out,
            "H-01",
            1,
            "crate root is missing #![forbid(unsafe_code)]".to_string(),
        );
    }
}

/// H-02: todo!/unimplemented! outside tests.
fn rule_h02(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && (t.text == "todo" || t.text == "unimplemented")
            && punct_at(ctx.toks, i + 1, "!")
            && !ctx.is_test(i)
        {
            push(
                ctx,
                out,
                "H-02",
                t.line,
                format!("{}! in non-test code", t.text),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

/// Directories never scanned: vendored third-party code, build output,
/// VCS metadata, run artifacts, and the lint fixtures (which are
/// deliberately rule-violating).
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "vendor" | "target" | ".git" | "results") || rel == "crates/lint/tests/fixtures"
}

/// Recursively collects workspace `.rs` files (workspace-relative,
/// forward-slash paths) in deterministic sorted order.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel_dir) = stack.pop() {
        let abs = root.join(&rel_dir);
        let mut entries: Vec<(String, bool)> = Vec::new();
        for entry in std::fs::read_dir(&abs)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let is_dir = entry.file_type()?.is_dir();
            entries.push((name, is_dir));
        }
        entries.sort();
        // Reverse so the stack pops in sorted order.
        for (name, is_dir) in entries.into_iter().rev() {
            let rel = if rel_dir.as_os_str().is_empty() {
                PathBuf::from(&name)
            } else {
                rel_dir.join(&name)
            };
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            if is_dir {
                if !skip_dir(&rel_str) {
                    stack.push(rel);
                }
            } else if name.ends_with(".rs") {
                out.push(rel);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scans the workspace rooted at `root` and aggregates all findings.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut report = Report {
        root: root.to_string_lossy().into_owned(),
        ..Report::default()
    };
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let mut fl = lint_source(&rel_str, &src);
        report.findings.append(&mut fl.findings);
        report.allows.append(&mut fl.allows);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .allows
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(rel: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_source(rel, src)
            .findings
            .iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn d01_only_fires_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u32>) {}\n";
        assert_eq!(ids("crates/lp/src/x.rs", src), [("D-01", 1), ("D-01", 2)]);
        assert!(ids("crates/serve/src/x.rs", src).is_empty());
        assert!(ids("crates/lp/tests/x.rs", src).is_empty());
    }

    #[test]
    fn d02_exempts_cancel_rs() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(ids("crates/lp/src/milp.rs", src), [("D-02", 1)]);
        assert!(ids("crates/lp/src/cancel.rs", src).is_empty());
    }

    #[test]
    fn d03_needs_float_adjacency() {
        let src = "fn f(x: f64, n: usize) -> bool { x == 0.0 && n == 3 }\n";
        assert_eq!(ids("crates/lp/src/x.rs", src), [("D-03", 1)]);
        let neg = "fn g(x: f64) -> bool { x == f64::NEG_INFINITY }\n";
        assert_eq!(ids("crates/core/src/x.rs", neg), [("D-03", 1)]);
    }

    #[test]
    fn s01_ignores_unwrap_or_else() {
        let src = "fn f(g: std::sync::MutexGuard<u32>) {}\nfn h(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap_or_else(|p| p.into_inner()); }\n";
        assert!(ids("crates/serve/src/x.rs", src).is_empty());
        let bad = "fn h(m: &std::sync::Mutex<u32>) { let _ = m.lock().unwrap(); }\n";
        assert_eq!(ids("crates/serve/src/x.rs", bad), [("S-01", 1)]);
    }

    #[test]
    fn s02_checks_literal_and_codes_path() {
        let ok = "fn f() { let _ = RsError::new(\"engine\", \"x\"); let _ = RsError::new(codes::TIMEOUT, \"y\"); }\n";
        assert!(ids("crates/serve/src/x.rs", ok).is_empty());
        let bad = "fn f() { let _ = RsError::new(\"wat\", \"x\"); }\n";
        assert_eq!(ids("crates/serve/src/x.rs", bad), [("S-02", 1)]);
    }

    #[test]
    fn h01_detects_missing_and_present() {
        assert_eq!(
            ids("crates/lp/src/lib.rs", "pub fn f() {}\n"),
            [("H-01", 1)]
        );
        assert!(ids(
            "crates/lp/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n"
        )
        .is_empty());
        // Non-root files don't need the attribute.
        assert!(ids("crates/lp/src/milp.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allow_suppresses_same_and_next_line() {
        let above = "fn f() { // comment\n    // lint:al\u{6c}ow(D-04) proven cheap invariant\n    debug_assert!(true);\n}\n";
        let fl = lint_source("crates/lp/src/x.rs", above);
        assert!(fl.findings.is_empty(), "{:?}", fl.findings);
        assert_eq!(fl.allows.len(), 1);
        assert!(fl.allows[0].used);
    }

    #[test]
    fn allow_without_reason_is_a01() {
        let src = "// lint:al\u{6c}ow(D-04)\ndebug_assert!(true);\n";
        let found = ids("crates/lp/src/x.rs", src);
        assert!(found.contains(&("A-01", 1)), "{found:?}");
        assert!(found.contains(&("D-04", 2)), "{found:?}");
    }

    #[test]
    fn stale_allow_is_a02() {
        let src = "// lint:al\u{6c}ow(D-04) nothing here actually\nfn f() {}\n";
        assert_eq!(ids("crates/lp/src/x.rs", src), [("A-02", 1)]);
    }

    #[test]
    fn json_report_escapes() {
        let report = Report {
            root: "r\"s".to_string(),
            files_scanned: 1,
            findings: vec![],
            allows: vec![],
        };
        let j = report.to_json();
        assert!(j.contains("\"r\\\"s\""));
        assert!(j.contains("\"findings\": []"));
    }
}
