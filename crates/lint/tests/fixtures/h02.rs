pub fn later() -> u32 {
    todo!("finish the frontier rewrite")
}
