pub fn order_keys() -> u32 {
    // lint:allow(D-01) membership-only index; iteration order never observed
    let set: std::collections::HashSet<u64> = Default::default();
    set.len() as u32
}
