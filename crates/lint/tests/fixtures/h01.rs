//! A crate root without the unsafe-code ban.

pub fn noop() {}
