pub fn order_keys() -> std::collections::HashSet<u64> {
    std::collections::HashSet::new()
}
