pub fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}
