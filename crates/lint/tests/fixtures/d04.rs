pub fn guard(len: usize, cap: usize) {
    debug_assert!(len <= cap, "frontier never exceeds capacity");
}
