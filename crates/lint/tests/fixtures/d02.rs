use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
