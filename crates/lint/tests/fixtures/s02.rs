pub fn fail() -> RsError {
    RsError::new("catastrophe", "this code is not in the vocabulary")
}
