pub fn at_bound(x: f64) -> bool {
    x == 1.0
}
