// lint:allow(Z-99) no such rule exists
// lint:allow(D-01)
pub fn noop() {}
