// lint:allow(D-03) there is nothing to suppress here
pub fn noop() {}
