//! The workspace self-check: the shipped tree must scan clean. This is
//! the same gate CI runs (`rs-lint --workspace --deny`), wired into
//! `cargo test` so a violating change fails locally before it ever
//! reaches a pipeline.

use rs_lint::{scan_workspace, Severity};

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

#[test]
fn workspace_scans_clean_under_deny() {
    let report = scan_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    let errors: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .collect();
    assert!(errors.is_empty(), "lint errors in the tree: {errors:#?}");
    let warnings: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Warn)
        .collect();
    assert!(
        warnings.is_empty(),
        "lint warnings in the tree (the CI gate runs --deny): {warnings:#?}"
    );
}

#[test]
fn every_suppression_in_the_tree_is_used_and_justified() {
    let report = scan_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        !report.allows.is_empty(),
        "the tree documents its known exceptions via allows"
    );
    for a in &report.allows {
        assert!(a.used, "stale allow at {}:{}", a.file, a.line);
        assert!(
            a.reason.split_whitespace().count() >= 3,
            "threadbare justification at {}:{}: {:?}",
            a.file,
            a.line,
            a.reason
        );
    }
}

#[test]
fn scan_is_deterministic() {
    let root = workspace_root();
    let a = scan_workspace(&root).expect("scan succeeds");
    let b = scan_workspace(&root).expect("scan succeeds");
    assert_eq!(a.to_json(), b.to_json());
}
