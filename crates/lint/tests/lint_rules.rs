//! Fixture-driven rule tests: every rule in the catalog has one
//! deliberately-violating snippet under `tests/fixtures/` (a directory the
//! workspace walker skips), and each test pins the exact rule ID and line
//! the scanner must report for it.

use rs_lint::{lint_source, FileLint, Severity};

/// Loads a fixture and lints it under the given workspace-relative path
/// (the path determines crate scoping).
fn lint_fixture(name: &str, rel: &str) -> FileLint {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint_source(rel, &src)
}

/// Asserts the lint produced exactly `expected` as `(rule, line)` pairs.
fn assert_findings(fl: &FileLint, expected: &[(&str, u32)]) {
    let got: Vec<(&str, u32)> = fl.findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, expected, "findings: {:#?}", fl.findings);
}

#[test]
fn d01_flags_hash_collections_in_solver_crates() {
    let fl = lint_fixture("d01.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[("D-01", 1), ("D-01", 2)]);
    assert!(fl.findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn d01_is_scoped_to_deterministic_search_crates() {
    // The same source in a crate outside lp/core/graph is fine.
    let fl = lint_fixture("d01.rs", "crates/bench/src/fixture.rs");
    assert_findings(&fl, &[]);
}

#[test]
fn d02_flags_wall_clock_reads() {
    // Only the actual `Instant::now` call trips the rule — the import and
    // the type position do not.
    let fl = lint_fixture("d02.rs", "crates/core/src/fixture.rs");
    assert_findings(&fl, &[("D-02", 4)]);
}

#[test]
fn d03_flags_raw_float_equality() {
    let fl = lint_fixture("d03.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[("D-03", 2)]);
    assert_eq!(fl.findings[0].severity, Severity::Warn);
}

#[test]
fn d04_flags_debug_assert() {
    let fl = lint_fixture("d04.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[("D-04", 2)]);
}

#[test]
fn s01_flags_unwrap_on_serve_paths() {
    let fl = lint_fixture("s01.rs", "crates/serve/src/fixture.rs");
    assert_findings(&fl, &[("S-01", 2)]);
    // The same code outside the serve crate is not a finding.
    let elsewhere = lint_fixture("s01.rs", "crates/sched/src/fixture.rs");
    assert_findings(&elsewhere, &[]);
}

#[test]
fn s02_flags_undocumented_error_codes() {
    let fl = lint_fixture("s02.rs", "crates/core/src/fixture.rs");
    assert_findings(&fl, &[("S-02", 2)]);
    assert!(fl.findings[0].message.contains("catastrophe"));
}

#[test]
fn h01_flags_crate_roots_without_unsafe_ban() {
    let fl = lint_fixture("h01.rs", "crates/fake/src/lib.rs");
    assert_findings(&fl, &[("H-01", 1)]);
    // A non-root file with the same content is fine.
    let not_root = lint_fixture("h01.rs", "crates/fake/src/util.rs");
    assert_findings(&not_root, &[]);
}

#[test]
fn h02_flags_todo_outside_tests() {
    let fl = lint_fixture("h02.rs", "crates/graph/src/fixture.rs");
    assert_findings(&fl, &[("H-02", 2)]);
}

#[test]
fn allow_round_trip_suppresses_and_records() {
    // A justified allow on the line above the finding suppresses it and
    // is recorded as used in the report.
    let fl = lint_fixture("allow_ok.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[]);
    assert_eq!(fl.allows.len(), 1);
    let a = &fl.allows[0];
    assert_eq!(a.rule, "D-01");
    assert_eq!(a.line, 2);
    assert!(a.used);
    assert!(a.reason.contains("membership-only"));
}

#[test]
fn stale_allow_is_a_warning() {
    let fl = lint_fixture("allow_stale.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[("A-02", 1)]);
    assert_eq!(fl.findings[0].severity, Severity::Warn);
}

#[test]
fn malformed_allows_are_errors() {
    // Unknown rule ID and missing justification are both A-01 errors, and
    // neither suppresses anything.
    let fl = lint_fixture("allow_bad.rs", "crates/lp/src/fixture.rs");
    assert_findings(&fl, &[("A-01", 1), ("A-01", 2)]);
    assert!(fl.findings.iter().all(|f| f.severity == Severity::Error));
}

#[test]
fn fixture_violations_vanish_under_test_paths() {
    // Everything under a tests/ directory is exempt from the code rules.
    let fl = lint_fixture("d01.rs", "crates/lp/tests/fixture.rs");
    assert_findings(&fl, &[]);
}
