//! Property test: a cancelled analysis leaves no residue in the engine.
//!
//! The deadline layer (PR 7) interrupts `RsEngine::analyze` mid-flight via
//! a [`Cancel`] token. The engine reuses scratch buffers and a solver pool
//! across calls, so an interrupted run must not leak partial state into the
//! next one: re-running the *same* engine after clearing the token has to
//! produce exactly the answer a fresh engine would.
//!
//! The generator builds layered chain DAGs (always acyclic by construction)
//! of float ALU ops with optional cross-chain edges, then trips the token
//! after a random number of polls — from "before the first poll" (the whole
//! run is cancelled) to "never reached" (the run completes normally).

use proptest::prelude::*;
use rs_core::{Cancel, DdgBuilder, OpClass, RegType, RsEngine, Target};

/// Builds a `chains × len` layered DAG of float ops. Each chain is a flow
/// path; `cross` is a bitmask adding forward edges `chain c, pos j` →
/// `chain c+1, pos j+1`, which keeps the graph acyclic.
fn build_ddg(chains: usize, len: usize, cross: u64) -> rs_core::Ddg {
    let mut b = DdgBuilder::new(Target::superscalar());
    let mut nodes = Vec::with_capacity(chains);
    for c in 0..chains {
        let mut chain = Vec::with_capacity(len);
        for j in 0..len {
            let n = b.op(format!("f{c}_{j}"), OpClass::FloatAlu, Some(RegType::FLOAT));
            if j > 0 {
                b.flow(chain[j - 1], n, 3, RegType::FLOAT);
            }
            chain.push(n);
        }
        nodes.push(chain);
    }
    let mut bit = 0;
    for c in 0..chains.saturating_sub(1) {
        for j in 0..len.saturating_sub(1) {
            if cross >> bit & 1 == 1 {
                b.flow(nodes[c][j], nodes[c + 1][j + 1], 3, RegType::FLOAT);
            }
            bit += 1;
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn interrupted_engine_recovers_to_fresh_engine_answers(
        chains in 1usize..=4,
        len in 1usize..=4,
        cross in any::<u64>(),
        polls in 0u64..12,
    ) {
        let ddg = build_ddg(chains, len, cross);

        // Interrupt an analysis partway through (or not at all, when the
        // poll budget outlasts the run — both paths must be clean).
        let mut engine = RsEngine::new();
        engine.set_cancel(Cancel::after_polls(polls));
        let _interrupted = engine.analyze(&ddg, RegType::FLOAT);
        engine.clear_cancel();

        // The same engine, re-run, must match a fresh engine exactly.
        let rerun = engine.analyze(&ddg, RegType::FLOAT);
        let fresh = RsEngine::new().analyze(&ddg, RegType::FLOAT);

        prop_assert_eq!(rerun.saturation, fresh.saturation);
        prop_assert_eq!(rerun.saturating_values, fresh.saturating_values);
        prop_assert_eq!(rerun.killing, fresh.killing);
        prop_assert_eq!(rerun.provably_optimal, fresh.provably_optimal);
    }
}
