//! # rs-core — register saturation (Touati, ICPP 2004)
//!
//! The **register saturation** `RS_t(G)` of a data-dependence DAG `G` is the
//! exact maximal register requirement of register type `t` over *all* valid
//! schedules of `G`:
//!
//! ```text
//! RS_t(G) = max over σ ∈ Σ(G) of RN_σ^t(G)
//! ```
//!
//! Handling register pressure this way — *before* instruction scheduling —
//! decouples register constraints from resource-constrained scheduling
//! (Figure 1 of the paper): if `RS ≤ R` the DAG needs no attention at all,
//! and otherwise the *reduction* pass adds the fewest serialization arcs
//! that bring `RS` below `R` while minimizing critical-path growth.
//!
//! This crate implements both sides of the paper's optimality study:
//!
//! | problem | heuristic (from CC'01 \[14\]) | exact |
//! |---|---|---|
//! | compute `RS` (NP-complete) | [`heuristic::GreedyK`] | [`exact::ExactRs`] (combinatorial B&B), [`ilp::RsIlp`] (the paper's Section-3 intLP) |
//! | reduce `RS ≤ R` (NP-hard, Thm 4.2) | [`reduce::Reducer`] | [`ilp::ReduceIlp`] (Section-4 intLP + Theorem-4.2 serialization arcs) |
//!
//! plus the supporting theory: lifetimes and register need
//! ([`lifetime`]), the potential-killing framework ([`pkill`], [`killing`]),
//! the register-*minimization* strawman of Section 6 ([`minimize`]), a
//! time-indexed baseline intLP used for the model-size comparison
//! ([`ilp_baseline`]), and the end-to-end pipeline ([`pipeline`]).

#![forbid(unsafe_code)]

pub mod cfg;
pub mod engine;
pub mod exact;
pub mod heuristic;
pub mod ilp;
pub mod ilp_baseline;
pub mod killing;
pub mod lifetime;
pub mod minimize;
pub mod model;
pub mod parse;
pub mod pipeline;
pub mod pkill;
pub mod reduce;
pub mod request;
pub mod spill;

pub use engine::{AnalysisScratch, RsEngine};
pub use exact::ExactRs;
pub use heuristic::GreedyK;
pub use ilp::{IlpRun, ReduceIlp, RsIlp};
pub use killing::{DisjointValueDag, KillingFunction};
pub use lifetime::{lifetime_intervals, register_need, saturating_values};
pub use model::{Ddg, DdgBuilder, EdgeKind, OpClass, Operation, RegType, Target, TargetKind};
pub use pipeline::{Pipeline, PipelineReport};
pub use reduce::{ReduceOutcome, Reducer};
pub use request::{RsError, RsOp, RsRequest, RsResponse, RsResult};
pub use rs_lp::{Cancel, MilpError, SearchCheckpoint};
pub use spill::{SpillPass, SpillResult};
