//! The `rsat` wire schema: one request/response shape for every execution
//! path.
//!
//! [`RsRequest`] describes a single unit of analysis work — an operation
//! (`analyze`/`reduce`/`pipeline`), the DDG text, and the solver knobs the
//! CLI exposes as flags. [`RsResponse`] carries either an [`RsResult`] or a
//! machine-readable [`RsError`] (`{code, message}`), plus cache counters
//! and the dispatch wall time. The same structs back
//!
//! - the `rsat serve` daemon (newline-delimited JSON over stdio or a Unix
//!   socket),
//! - the one-shot `analyze`/`reduce`/`pipeline` subcommands, and
//! - the `rsat corpus` batch runner,
//!
//! so every front end constructs an [`RsRequest`] and renders from the same
//! response shape. The schema is versioned: requests must carry `"v": 1`
//! ([`PROTOCOL_VERSION`]); responses echo the version back.
//!
//! This module is pure data — execution lives in the `rs-serve` crate so
//! the dispatcher can reach the scheduler/allocator without a dependency
//! cycle.

use crate::model::RegType;
use serde::{de_field, DeError, Deserialize, Serialize, Value};

/// The wire protocol version accepted by [`RsRequest::validate`].
pub const PROTOCOL_VERSION: u64 = 1;

/// Stable machine-readable error codes carried by [`RsError::code`].
pub mod codes {
    /// Bad or missing request fields / CLI flags.
    pub const USAGE: &str = "usage";
    /// Filesystem or socket failure.
    pub const IO: &str = "io";
    /// The `.ddg` payload did not parse.
    pub const PARSE: &str = "parse";
    /// The request line was not valid JSON or not a valid request object.
    pub const REQUEST: &str = "request";
    /// Unsupported protocol version.
    pub const VERSION: &str = "version";
    /// The engine panicked; the worker replaced it and kept serving.
    pub const PANIC: &str = "panic";
    /// A solver reported an error (e.g. intLP failure).
    pub const ENGINE: &str = "engine";
    /// The register budget cannot be met with the requested means.
    pub const INFEASIBLE: &str = "infeasible";
    /// The request's `timeout_ms` deadline expired. The response still
    /// carries the best partial result (heuristic values, solver
    /// incumbents with their bounds) in [`super::RsResponse::result`].
    pub const TIMEOUT: &str = "timeout";
    /// The server shed the request before execution: it waited in the
    /// queue past its own deadline. Safe to retry.
    pub const OVERLOADED: &str = "overloaded";
}

/// Machine-readable error shape shared by serve responses, corpus
/// `ok:false` entries, and CLI failures.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsError {
    /// One of the [`codes`] constants.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl RsError {
    /// Creates an error with the given code and message.
    pub fn new(code: &str, message: impl Into<String>) -> Self {
        RsError {
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Shorthand for a [`codes::USAGE`] error.
    pub fn usage(message: impl Into<String>) -> Self {
        RsError::new(codes::USAGE, message)
    }
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for RsError {}

/// The operation a request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RsOp {
    /// Compute register saturation (optionally exact / intLP).
    Analyze,
    /// Reduce saturation below a register budget by serialization arcs
    /// (optionally spilling).
    Reduce,
    /// Reduce, then list-schedule and allocate (the paper's Figure-1 flow).
    Pipeline,
}

impl RsOp {
    /// Lowercase wire name, matching the CLI subcommand.
    pub fn name(self) -> &'static str {
        match self {
            RsOp::Analyze => "analyze",
            RsOp::Reduce => "reduce",
            RsOp::Pipeline => "pipeline",
        }
    }

    /// Parses a lowercase wire name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "analyze" => Some(RsOp::Analyze),
            "reduce" => Some(RsOp::Reduce),
            "pipeline" => Some(RsOp::Pipeline),
            _ => None,
        }
    }
}

impl Serialize for RsOp {
    fn to_value(&self) -> Value {
        Value::Str(self.name().to_string())
    }
}

impl Deserialize for RsOp {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        RsOp::from_name(&s).ok_or_else(|| DeError::new(format!("unknown op `{s}`")))
    }
}

/// Lowercase wire name of a register type (`"int"`/`"float"`/`"branch"`).
pub fn reg_type_name(t: RegType) -> String {
    format!("{t:?}")
}

/// Parses a lowercase register-type name.
pub fn reg_type_from_name(name: &str) -> Option<RegType> {
    match name {
        "int" => Some(RegType::INT),
        "float" => Some(RegType::FLOAT),
        "branch" => Some(RegType::BRANCH),
        _ => None,
    }
}

/// One unit of analysis work, as submitted by any front end.
///
/// Serialization emits every field; deserialization fills absent optional
/// fields with defaults (`false` flags, `threads: 1`, `cache: true`), so a
/// minimal wire request is `{"v":1,"op":"analyze","ddg":"..."}`. Unknown
/// fields are ignored.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct RsRequest {
    /// Protocol version; must equal [`PROTOCOL_VERSION`].
    pub v: u64,
    /// Optional client-chosen id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The operation to run.
    pub op: RsOp,
    /// The DDG in the `rs_core::parse` text format.
    pub ddg: String,
    /// Restrict to one register type (default: every type present).
    pub reg_type: Option<String>,
    /// Register budget; required by `reduce` and `pipeline`.
    pub registers: Option<usize>,
    /// Also run the exact combinatorial search (`analyze`).
    pub exact: bool,
    /// Also run the Section-3 intLP (`analyze`).
    pub ilp: bool,
    /// Report intLP branch-and-bound statistics (`analyze`, with `ilp`).
    pub stats: bool,
    /// Worker threads for the exact solvers (results are thread-count
    /// invariant; excluded from the cache key).
    pub threads: usize,
    /// Fall back to spill-code insertion when serialization cannot reach
    /// the budget (`reduce`).
    pub spill: bool,
    /// Return the post-reduction DDG text in [`RsResult::ddg_out`].
    pub emit_ddg: bool,
    /// Issue width for the pipeline scheduler (1, 4, or 8; default 4).
    pub issue: Option<u64>,
    /// Allow the server to answer from its memoization cache.
    pub cache: bool,
    /// Wall-clock deadline for this request in milliseconds (default:
    /// none). On expiry the executing stack cancels cooperatively and the
    /// response degrades instead of failing: `ok:false` with
    /// [`codes::TIMEOUT`] *plus* the best partial result. Excluded from
    /// the cache key — degraded results are never cached.
    pub timeout_ms: Option<u64>,
    /// Override the solver's pre-solve static audit (`None` keeps the
    /// build default: on in debug, off in release). The audit rejects
    /// incoherent models and corrupted resume checkpoints with
    /// [`codes::REQUEST`] errors before any search runs; it never changes
    /// the answer of a sound request.
    pub audit: Option<bool>,
}

impl RsRequest {
    /// A version-1 request with default knobs.
    pub fn new(op: RsOp, ddg: impl Into<String>) -> Self {
        RsRequest {
            v: PROTOCOL_VERSION,
            id: None,
            op,
            ddg: ddg.into(),
            reg_type: None,
            registers: None,
            exact: false,
            ilp: false,
            stats: false,
            threads: 1,
            spill: false,
            emit_ddg: false,
            issue: None,
            cache: true,
            timeout_ms: None,
            audit: None,
        }
    }

    /// Checks version and field consistency, before any parsing of the
    /// DDG payload.
    pub fn validate(&self) -> Result<(), RsError> {
        if self.v != PROTOCOL_VERSION {
            return Err(RsError::new(
                codes::VERSION,
                format!(
                    "unsupported protocol version {} (expected {PROTOCOL_VERSION})",
                    self.v
                ),
            ));
        }
        if let Some(name) = &self.reg_type {
            if reg_type_from_name(name).is_none() {
                return Err(RsError::usage(format!("unknown register type `{name}`")));
            }
        }
        match self.op {
            RsOp::Analyze => {}
            RsOp::Reduce | RsOp::Pipeline => match self.registers {
                None => {
                    return Err(RsError::usage(format!(
                        "op `{}` requires a register budget (missing --registers N)",
                        self.op.name()
                    )))
                }
                Some(0) => {
                    return Err(RsError::usage("--registers must be at least 1"));
                }
                Some(_) => {}
            },
        }
        if let Some(w) = self.issue {
            if !matches!(w, 1 | 4 | 8) {
                return Err(RsError::usage(format!("unknown issue width `{w}`")));
            }
        }
        Ok(())
    }

    /// Canonical memoization key over every result-affecting field.
    ///
    /// `id`, `cache`, `threads`, and `timeout_ms` are excluded: the first
    /// two do not affect results, exact-solver results are thread-count
    /// invariant (solve *statistics* may differ; they are advisory), and
    /// timed-out (degraded) results are never inserted into the cache, so
    /// the deadline cannot affect what a cached entry holds.
    pub fn cache_key(&self) -> String {
        format!(
            "v{};op={};type={:?};regs={:?};exact={};ilp={};stats={};spill={};emit={};issue={:?};audit={:?};ddg={}",
            self.v,
            self.op.name(),
            self.reg_type,
            self.registers,
            self.exact,
            self.ilp,
            self.stats,
            self.spill,
            self.emit_ddg,
            self.issue,
            self.audit,
            self.ddg,
        )
    }
}

impl Deserialize for RsRequest {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if !matches!(value, Value::Object(_)) {
            return Err(DeError::new("expected request object"));
        }
        let mut req = RsRequest::new(de_field::<RsOp>(value, "op")?, String::new());
        req.ddg = de_field(value, "ddg")?;
        // `v` is required on the wire: absent versions fail validate().
        req.v = opt_field(value, "v")?.unwrap_or(0);
        req.id = opt_field(value, "id")?;
        req.reg_type = opt_field(value, "reg_type")?;
        req.registers = opt_field(value, "registers")?;
        req.exact = opt_field(value, "exact")?.unwrap_or(false);
        req.ilp = opt_field(value, "ilp")?.unwrap_or(false);
        req.stats = opt_field(value, "stats")?.unwrap_or(false);
        req.threads = opt_field(value, "threads")?.unwrap_or(1);
        req.spill = opt_field(value, "spill")?.unwrap_or(false);
        req.emit_ddg = opt_field(value, "emit_ddg")?.unwrap_or(false);
        req.issue = opt_field(value, "issue")?;
        req.cache = opt_field(value, "cache")?.unwrap_or(true);
        req.timeout_ms = opt_field(value, "timeout_ms")?;
        req.audit = opt_field(value, "audit")?;
        Ok(req)
    }
}

/// Optional-field lookup: a missing or `null` key yields `None`.
fn opt_field<T: Deserialize>(value: &Value, name: &str) -> Result<Option<T>, DeError> {
    de_field::<Option<T>>(value, name)
}

/// Cache observability attached to every response.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheInfo {
    /// Whether this response was served from the memoization cache.
    pub hit: bool,
    /// Cumulative cache hits of the answering dispatcher's cache.
    pub hits: u64,
    /// Cumulative cache misses of the answering dispatcher's cache.
    pub misses: u64,
}

impl CacheInfo {
    /// Cache info for a dispatcher without a cache.
    pub fn disabled() -> Self {
        CacheInfo {
            hit: false,
            hits: 0,
            misses: 0,
        }
    }
}

/// Result of one exact-flavour solver run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveResult {
    /// The saturation the solver found.
    pub saturation: usize,
    /// Whether the value is proven optimal (false: budget-limited).
    pub proven_optimal: bool,
    /// Proven upper bound on the true saturation when the solver was
    /// interrupted (`saturation ≤ RS ≤ bound`); `None` when proven optimal
    /// (the bound would merely repeat `saturation`).
    pub bound: Option<usize>,
    /// Opaque resume token, present when the solver was interrupted
    /// (deadline, cancellation, or node budget) with open work left. The
    /// serving dispatcher also retains the checkpoint behind this token in
    /// a bounded store keyed by the request's cache key, so **retrying the
    /// same request resumes the search** instead of restarting it; the
    /// token itself lets clients persist the snapshot across server
    /// restarts. Treat the contents as opaque: the format is a
    /// solver-internal JSON document, versioned and fingerprinted against
    /// the exact model and configuration that produced it.
    pub resume: Option<String>,
    /// True when this result continued a previous interrupted search from
    /// a retained checkpoint instead of solving from scratch.
    pub resumed: bool,
}

/// intLP branch-and-bound statistics (mirrors `rs_lp::milp::MilpStats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IlpStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxation solves.
    pub lp_solves: usize,
    /// Warm-started dive solves.
    pub warm_solves: usize,
    /// Warm-start hits.
    pub warm_hits: usize,
    /// Dive-tableau basis reinstalls.
    pub dive_reinstalls: usize,
    /// Pseudocost-guided branching decisions.
    pub pseudocost_branches: usize,
    /// Strong-branching probes.
    pub strong_branch_probes: usize,
    /// Simplex pivots.
    pub pivots: usize,
    /// Pivots whose leaving row was chosen by dual steepest-edge pricing
    /// (zero under Dantzig pricing).
    pub dse_pivots: usize,
    /// Bound flips.
    pub bound_flips: usize,
    /// Cutting planes added to the relaxation (root rounds + node cuts).
    pub cuts_added: usize,
    /// Root separation rounds that improved the relaxation bound.
    pub cut_rounds: usize,
    /// Nodes fathomed by bound propagation before any LP solve.
    pub propagation_fathoms: usize,
    /// Relaxation tableau rows.
    pub rows: usize,
    /// Relaxation tableau columns.
    pub cols: usize,
    /// Order-sensitive digest of the committed branch-and-bound node
    /// trace. Identical runs (any thread count; interrupted-and-resumed
    /// or not) report identical digests — the observable the determinism
    /// smoke checks diff.
    pub trace_digest: u64,
    /// Whether the pre-solve static audit ran for this solve. Advisory,
    /// like the pivot counters: it never affects the reported answer.
    pub audited: bool,
}

/// Outcome of reducing one register type below its budget.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceResult {
    /// The register budget.
    pub budget: usize,
    /// Saturation after reduction (and spilling, if any).
    pub rs_after: usize,
    /// Serialization arcs added.
    pub arcs_added: usize,
    /// Critical path before reduction.
    pub cp_before: i64,
    /// Critical path after reduction.
    pub cp_after: i64,
    /// Whether `rs_after <= budget` was reached.
    pub fits: bool,
    /// Values spilled to memory (empty without `spill`).
    pub spilled: Vec<String>,
}

/// Register allocation of one type over the final schedule (`pipeline`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocResult {
    /// Registers the allocator actually used.
    pub registers_used: usize,
    /// Values spilled by the allocator (0 when reduction did its job).
    pub spills: usize,
}

/// Per-register-type results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TypeResult {
    /// Lowercase register-type name ([`reg_type_name`]).
    pub reg_type: String,
    /// Values of this type in the submitted DAG.
    pub values: usize,
    /// Greedy-k saturation estimate RS* (pre-reduction).
    pub saturation: usize,
    /// Names of the saturating values (analyze only).
    pub saturating: Vec<String>,
    /// Whether the heuristic value is provably optimal.
    pub optimal: bool,
    /// Exact combinatorial search result, when requested.
    pub exact: Option<SolveResult>,
    /// intLP result, when requested and successful.
    pub ilp: Option<SolveResult>,
    /// intLP branch-and-bound statistics, when requested.
    pub ilp_stats: Option<IlpStats>,
    /// intLP failure, when requested and unsuccessful.
    pub ilp_error: Option<RsError>,
    /// Reduction outcome (`reduce`/`pipeline`).
    pub reduce: Option<ReduceResult>,
    /// Allocation outcome (`pipeline`, when every type fits).
    pub alloc: Option<AllocResult>,
}

/// The payload of a successful response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RsResult {
    /// Operations in the submitted DAG (incl. ⊥).
    pub ops: usize,
    /// Edges in the submitted DAG.
    pub edges: usize,
    /// Critical path of the submitted DAG.
    pub critical_path: i64,
    /// Per-type results, in ascending type order.
    pub types: Vec<TypeResult>,
    /// Schedule makespan (`pipeline`, when every type fits).
    pub makespan: Option<i64>,
    /// Post-reduction DDG text, when `emit_ddg` was set.
    pub ddg_out: Option<String>,
}

/// The answer to one [`RsRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RsResponse {
    /// Protocol version (always [`PROTOCOL_VERSION`]).
    pub v: u64,
    /// The request id, echoed back when one was given.
    pub id: Option<String>,
    /// Whether the request succeeded.
    pub ok: bool,
    /// The failure, when `ok` is false.
    pub error: Option<RsError>,
    /// The result, when `ok` is true.
    pub result: Option<RsResult>,
    /// Cache observability.
    pub cache: CacheInfo,
    /// Dispatch wall time in milliseconds.
    pub millis: f64,
}

impl RsResponse {
    /// A successful response.
    pub fn success(id: Option<String>, result: RsResult, cache: CacheInfo, millis: f64) -> Self {
        RsResponse {
            v: PROTOCOL_VERSION,
            id,
            ok: true,
            error: None,
            result: Some(result),
            cache,
            millis,
        }
    }

    /// A failed response.
    pub fn failure(id: Option<String>, error: RsError, cache: CacheInfo, millis: f64) -> Self {
        RsResponse {
            v: PROTOCOL_VERSION,
            id,
            ok: false,
            error: Some(error),
            result: None,
            cache,
            millis,
        }
    }

    /// A degraded (deadline-expired) response: `ok:false` with a
    /// [`codes::TIMEOUT`] error **and** the best partial result the stack
    /// produced before the cut — heuristic saturations, solver incumbents
    /// with their dual bounds (`proven_optimal: false`), partial
    /// reductions. Clients that only check `ok` treat it as a failure;
    /// clients that look at `result` still get the best-known answer.
    pub fn timeout(
        id: Option<String>,
        error: RsError,
        partial: RsResult,
        cache: CacheInfo,
        millis: f64,
    ) -> Self {
        // Promoted from a debug assertion: a mislabelled timeout response
        // would lie to every release client. Once per response, and the
        // serve loop's panic isolation contains a violation.
        assert_eq!(error.code, codes::TIMEOUT);
        RsResponse {
            v: PROTOCOL_VERSION,
            id,
            ok: false,
            error: Some(error),
            result: Some(partial),
            cache,
            millis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_wire_request_gets_defaults() {
        let v = serde_json::from_str(r#"{"v":1,"op":"analyze","ddg":"op a load float"}"#).unwrap();
        let req = RsRequest::from_value(&v).expect("parses");
        assert_eq!(req.op, RsOp::Analyze);
        assert_eq!(req.threads, 1);
        assert!(req.cache);
        assert!(!req.exact);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn missing_version_is_rejected_by_validate() {
        let v = serde_json::from_str(r#"{"op":"analyze","ddg":""}"#).unwrap();
        let req = RsRequest::from_value(&v).expect("parses");
        let err = req.validate().unwrap_err();
        assert_eq!(err.code, codes::VERSION);
    }

    #[test]
    fn reduce_without_budget_is_a_usage_error() {
        let mut req = RsRequest::new(RsOp::Reduce, "op a load float");
        assert_eq!(req.validate().unwrap_err().code, codes::USAGE);
        req.registers = Some(0);
        let err = req.validate().unwrap_err();
        assert!(err.message.contains("at least 1"), "{err}");
        req.registers = Some(2);
        assert!(req.validate().is_ok());
    }

    #[test]
    fn request_roundtrips_through_json() {
        let mut req = RsRequest::new(RsOp::Pipeline, "op a load float\n");
        req.id = Some("r1".into());
        req.registers = Some(4);
        req.issue = Some(8);
        req.threads = 3;
        req.timeout_ms = Some(250);
        let json = serde_json::to_string(&req).unwrap();
        let back = RsRequest::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn cache_key_ignores_threads_and_id() {
        let mut a = RsRequest::new(RsOp::Analyze, "op a load float");
        let mut b = a.clone();
        b.threads = 8;
        b.id = Some("x".into());
        b.cache = false;
        b.timeout_ms = Some(5);
        assert_eq!(a.cache_key(), b.cache_key());
        a.exact = true;
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn timeout_ms_defaults_to_none_on_the_wire() {
        let v = serde_json::from_str(r#"{"v":1,"op":"analyze","ddg":"op a load float"}"#).unwrap();
        let req = RsRequest::from_value(&v).expect("parses");
        assert_eq!(req.timeout_ms, None);
        let v = serde_json::from_str(
            r#"{"v":1,"op":"analyze","ddg":"op a load float","timeout_ms":40}"#,
        )
        .unwrap();
        let req = RsRequest::from_value(&v).expect("parses");
        assert_eq!(req.timeout_ms, Some(40));
    }

    #[test]
    fn solve_result_resume_token_roundtrips() {
        // The resume token is an embedded JSON document — every quote,
        // backslash, and control character must survive the string-field
        // escaping of the response wire format.
        let sr = SolveResult {
            saturation: 3,
            proven_optimal: false,
            bound: Some(5),
            resume: Some(
                "{\"version\":1,\"frontier\":[{\"path\":[0,1]}],\
                 \"note\":\"quote \\\" backslash \\\\ newline \\n tab \\t\"}"
                    .into(),
            ),
            resumed: true,
        };
        let json = serde_json::to_string(&sr).unwrap();
        let back = SolveResult::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, sr);

        // Absent token deserializes to None/false (wire compat with
        // responses from servers predating resume support).
        let v = serde_json::from_str(
            r#"{"saturation":2,"proven_optimal":true,"bound":null,"resume":null,"resumed":false}"#,
        )
        .unwrap();
        let back = SolveResult::from_value(&v).unwrap();
        assert_eq!(back.resume, None);
        assert!(!back.resumed);
    }

    #[test]
    fn timeout_response_carries_error_and_partial_result() {
        let partial = RsResult {
            ops: 2,
            edges: 1,
            critical_path: 3,
            types: Vec::new(),
            makespan: None,
            ddg_out: None,
        };
        let resp = RsResponse::timeout(
            Some("t".into()),
            RsError::new(codes::TIMEOUT, "deadline expired after 40 ms"),
            partial,
            CacheInfo::disabled(),
            41.0,
        );
        assert!(!resp.ok);
        assert_eq!(resp.error.as_ref().unwrap().code, codes::TIMEOUT);
        assert!(
            resp.result.is_some(),
            "timeout must keep the partial result"
        );
        let json = serde_json::to_string(&resp).unwrap();
        let back = RsResponse::from_value(&serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back, resp);
    }
}
