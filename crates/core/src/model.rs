//! DAG and processor model (Section 2 of the paper).
//!
//! A DDG `G = (V, E, δ)` carries the data dependences and any other serial
//! constraints of a loop body / basic block. Each statement writes **at most
//! one value per register type** (the paper's model restriction, footnote 2);
//! `V_{R,t}` is the set of nodes producing a value of type `t`, and
//! `E_{R,t}` the flow edges through such values.
//!
//! The processor model covers superscalar, VLIW and EPIC/IA64 targets via
//! two *architecturally visible* delay functions: a value of `u` is written
//! at `σ(u) + δw(u)` and an operand is read at `σ(u) + δr(u)`. Superscalar
//! targets have `δr = δw = 0`.
//!
//! A virtual **bottom node ⊥** closes the DAG: it consumes every exit value
//! (flow arcs) and is serialized after every node (serial arcs of latency
//! equal to the source operation's latency), so `⊥` is always scheduled
//! last and `σ(⊥)` is the total schedule time.

use rs_graph::{topo, DiGraph, EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A register type (the paper's `t ∈ T`, e.g. `{int, float}`).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegType(pub u8);

impl RegType {
    /// General-purpose / integer registers.
    pub const INT: RegType = RegType(0);
    /// Floating-point registers.
    pub const FLOAT: RegType = RegType(1);
    /// Branch / predicate registers (used by the EPIC-flavoured kernels).
    pub const BRANCH: RegType = RegType(2);

    /// Index for side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RegType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegType::INT => write!(f, "int"),
            RegType::FLOAT => write!(f, "float"),
            RegType::BRANCH => write!(f, "branch"),
            RegType(other) => write!(f, "t{}", other),
        }
    }
}

/// Functional class of an operation; drives default latencies/delays and the
/// downstream resource model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Integer ALU op (add, sub, logic).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Floating-point add/sub/compare.
    FloatAlu,
    /// Floating-point multiply.
    FloatMul,
    /// Floating-point divide / sqrt.
    FloatDiv,
    /// Register-to-register copy.
    Copy,
    /// Address computation (often folded into AGU).
    Addr,
    /// Anything else (no default latency; builder must supply edges).
    Other,
}

impl OpClass {
    /// All classes, for iteration in resource models.
    pub const ALL: [OpClass; 10] = [
        OpClass::Load,
        OpClass::Store,
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FloatAlu,
        OpClass::FloatMul,
        OpClass::FloatDiv,
        OpClass::Copy,
        OpClass::Addr,
        OpClass::Other,
    ];

    fn table_index(self) -> usize {
        match self {
            OpClass::Load => 0,
            OpClass::Store => 1,
            OpClass::IntAlu => 2,
            OpClass::IntMul => 3,
            OpClass::FloatAlu => 4,
            OpClass::FloatMul => 5,
            OpClass::FloatDiv => 6,
            OpClass::Copy => 7,
            OpClass::Addr => 8,
            OpClass::Other => 9,
        }
    }
}

/// Whether reading/writing offsets are architecturally visible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// Sequential semantics, `δr = δw = 0` (also EPIC/IA64 per the paper:
    /// "in superscalar and EPIC/IA64 processors, δr and δw are equal to
    /// zero").
    Superscalar,
    /// Static-issue VLIW with visible pipeline steps: nonzero write offsets.
    Vliw,
}

/// A target processor description: per-class default latency and visible
/// read/write delays.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Target {
    /// Offset semantics.
    pub kind: TargetKind,
    latency: [i64; 10],
    delta_w: [i64; 10],
    delta_r: [i64; 10],
}

impl Target {
    /// A generic 4-issue superscalar: `δr = δw = 0`, classic latencies
    /// (load 4, FP mul 4, FP div 17, …).
    pub fn superscalar() -> Self {
        Target {
            kind: TargetKind::Superscalar,
            //        Ld St Ia Im Fa Fm Fd Cp Ad Ot
            latency: [4, 1, 1, 3, 3, 4, 17, 1, 1, 1],
            delta_w: [0; 10],
            delta_r: [0; 10],
        }
    }

    /// A VLIW with visible pipelines: results are written `latency − 1`
    /// cycles after issue (`δw = latency − 1`), operands read at issue
    /// (`δr = 0`).
    pub fn vliw() -> Self {
        let latency: [i64; 10] = [4, 1, 1, 3, 3, 4, 17, 1, 1, 1];
        let mut delta_w = [0i64; 10];
        for (dw, &l) in delta_w.iter_mut().zip(&latency) {
            *dw = (l - 1).max(0);
        }
        Target {
            kind: TargetKind::Vliw,
            latency,
            delta_w,
            delta_r: [0; 10],
        }
    }

    /// Default result latency for a class.
    pub fn latency(&self, class: OpClass) -> i64 {
        self.latency[class.table_index()]
    }

    /// Write delay `δw` for a class.
    pub fn delta_w(&self, class: OpClass) -> i64 {
        self.delta_w[class.table_index()]
    }

    /// Read delay `δr` for a class.
    pub fn delta_r(&self, class: OpClass) -> i64 {
        self.delta_r[class.table_index()]
    }

    /// Overrides the latency of a class (builder convenience for kernels
    /// that model unusual units).
    pub fn with_latency(mut self, class: OpClass, latency: i64) -> Self {
        self.latency[class.table_index()] = latency;
        if matches!(self.kind, TargetKind::Vliw) {
            self.delta_w[class.table_index()] = (latency - 1).max(0);
        }
        self
    }
}

/// An operation (DDG node payload).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Operation {
    /// Human-readable mnemonic, e.g. `"load a[i]"`.
    pub name: String,
    /// Functional class.
    pub class: OpClass,
    /// Register types this operation defines a value of (at most one each).
    pub writes: Vec<RegType>,
    /// Result latency (cycles until a consumer may read).
    pub latency: i64,
    /// Write delay `δw(u)`.
    pub delta_w: i64,
    /// Read delay `δr(u)`.
    pub delta_r: i64,
    /// True only for the virtual bottom node `⊥`.
    pub is_bottom: bool,
}

/// Kind of a DDG edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// Flow dependence through a register of the given type (`E_{R,t}`).
    Flow(RegType),
    /// Any other precedence (anti/output/memory/control, or a serialization
    /// arc added by the reduction pass).
    Serial,
}

/// A data-dependence graph with its processor model, after
/// [`DdgBuilder::finish`] — closed by the bottom node and validated.
#[derive(Clone, Debug)]
pub struct Ddg {
    /// The underlying graph. Mutate only through [`Ddg::add_serial`] so the
    /// edge-kind table stays in sync.
    graph: DiGraph<Operation>,
    edge_kinds: Vec<EdgeKind>,
    bottom: NodeId,
    num_types: usize,
    target: Target,
}

impl Ddg {
    /// The underlying directed graph (read-only).
    pub fn graph(&self) -> &DiGraph<Operation> {
        &self.graph
    }

    /// The virtual bottom node `⊥`.
    pub fn bottom(&self) -> NodeId {
        self.bottom
    }

    /// The target processor description.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Number of distinct register types appearing in the DDG.
    pub fn num_types(&self) -> usize {
        self.num_types
    }

    /// All register types with at least one value.
    pub fn reg_types(&self) -> Vec<RegType> {
        (0..self.num_types as u8)
            .map(RegType)
            .filter(|&t| !self.values(t).is_empty())
            .collect()
    }

    /// Kind of an edge.
    pub fn edge_kind(&self, e: EdgeId) -> EdgeKind {
        self.edge_kinds[e.index()]
    }

    /// Number of operations, `⊥` included.
    pub fn num_ops(&self) -> usize {
        self.graph.node_count()
    }

    /// `V_{R,t}`: nodes writing a value of type `t` (never includes `⊥`).
    pub fn values(&self, t: RegType) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.values_into(t, &mut out);
        out
    }

    /// Allocation-reusing [`Ddg::values`]: clears `out` and fills it with
    /// `V_{R,t}` in ascending node order.
    pub fn values_into(&self, t: RegType, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.graph.node_ids().filter(|&n| {
                !self.graph.node(n).is_bottom && self.graph.node(n).writes.contains(&t)
            }),
        );
    }

    /// `Cons(u^t)`: consumers of `u`'s value of type `t`, deduplicated.
    pub fn consumers(&self, u: NodeId, t: RegType) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.consumers_into(u, t, &mut out);
        out
    }

    /// Allocation-reusing [`Ddg::consumers`]: clears `out` and fills it with
    /// the sorted, deduplicated consumers of `u`'s `t`-value.
    pub fn consumers_into(&self, u: NodeId, t: RegType, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(
            self.graph
                .out_edges(u)
                .filter(|&e| self.edge_kinds[e.index()] == EdgeKind::Flow(t))
                .map(|e| self.graph.dst(e)),
        );
        out.sort_unstable();
        out.dedup();
    }

    /// Write delay of `u`.
    #[inline]
    pub fn delta_w(&self, u: NodeId) -> i64 {
        self.graph.node(u).delta_w
    }

    /// Read delay of `u`.
    #[inline]
    pub fn delta_r(&self, u: NodeId) -> i64 {
        self.graph.node(u).delta_r
    }

    /// Adds a serialization arc (used by the reduction passes). Returns its
    /// id. Does **not** re-validate acyclicity; callers check.
    pub fn add_serial(&mut self, from: NodeId, to: NodeId, latency: i64) -> EdgeId {
        let e = self.graph.add_edge(from, to, latency);
        // lint:allow(D-04) DiGraph::add_edge allocates contiguous ids, so id == len holds by construction
        debug_assert_eq!(e.index(), self.edge_kinds.len());
        self.edge_kinds.push(EdgeKind::Serial);
        e
    }

    /// Removes an edge added by [`Ddg::add_serial`].
    pub fn remove_edge(&mut self, e: EdgeId) {
        self.graph.remove_edge(e);
    }

    /// Whether the DDG (with any added serialization arcs) is acyclic.
    pub fn is_acyclic(&self) -> bool {
        topo::is_acyclic(&self.graph)
    }

    /// The paper's worst-case total schedule time `T = Σ_e δ(e)` (clamping
    /// negative latencies at zero), used to bound intLP domains.
    pub fn horizon(&self) -> i64 {
        self.graph.total_latency().max(1)
    }

    /// Critical path length (equals the longest path into `⊥`, by
    /// construction of the bottom arcs).
    pub fn critical_path(&self) -> i64 {
        rs_graph::paths::critical_path(&self.graph)
    }

    /// Renders the DDG as Graphviz DOT; `highlight` marks added arcs.
    pub fn to_dot(&self, name: &str, highlight: &[EdgeId]) -> String {
        let hl: Vec<usize> = highlight.iter().map(|e| e.index()).collect();
        rs_graph::dot::to_dot(&self.graph, name, |op| op.name.clone(), &hl)
    }
}

/// Incremental DDG construction; [`DdgBuilder::finish`] validates the model
/// restrictions and closes the DAG with `⊥`.
#[derive(Clone, Debug)]
pub struct DdgBuilder {
    target: Target,
    graph: DiGraph<Operation>,
    edge_kinds: Vec<EdgeKind>,
}

impl DdgBuilder {
    /// Starts building against a target.
    pub fn new(target: Target) -> Self {
        DdgBuilder {
            target,
            graph: DiGraph::new(),
            edge_kinds: Vec::new(),
        }
    }

    /// Adds an operation writing at most one value (of `writes` type).
    pub fn op(
        &mut self,
        name: impl Into<String>,
        class: OpClass,
        writes: Option<RegType>,
    ) -> NodeId {
        self.op_multi(name, class, writes.into_iter().collect())
    }

    /// Adds an operation defining several values of *distinct* types
    /// (the paper's model allows multi-type definitions as long as no type
    /// repeats).
    pub fn op_multi(
        &mut self,
        name: impl Into<String>,
        class: OpClass,
        writes: Vec<RegType>,
    ) -> NodeId {
        let mut seen = writes.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            writes.len(),
            "an operation may define at most one value per register type"
        );
        let latency = self.target.latency(class);
        self.graph.add_node(Operation {
            name: name.into(),
            class,
            writes,
            latency,
            delta_w: self.target.delta_w(class),
            delta_r: self.target.delta_r(class),
            is_bottom: false,
        })
    }

    /// Adds a flow dependence `from -> to` through a register of type `t`,
    /// with the producer's default latency.
    pub fn flow(&mut self, from: NodeId, to: NodeId, latency: i64, t: RegType) -> EdgeId {
        assert!(
            self.graph.node(from).writes.contains(&t),
            "flow edge source {} does not write a {:?} value",
            self.graph.node(from).name,
            t
        );
        let min = self.graph.node(from).delta_w - self.graph.node(to).delta_r;
        assert!(
            latency >= min,
            "flow latency {} < δw(src) − δr(dst) = {} would allow reading before the write",
            latency,
            min
        );
        let e = self.graph.add_edge(from, to, latency);
        self.edge_kinds.push(EdgeKind::Flow(t));
        e
    }

    /// Flow edge with the producer's default latency.
    pub fn flow_default(&mut self, from: NodeId, to: NodeId, t: RegType) -> EdgeId {
        let lat = self.graph.node(from).latency;
        self.flow(from, to, lat, t)
    }

    /// Re-adds an existing [`Operation`] verbatim (used by passes that
    /// rebuild a DDG, e.g. spill insertion). The bottom flag is cleared —
    /// `finish` will insert a fresh `⊥`.
    pub fn add_operation(&mut self, mut op: Operation) -> NodeId {
        op.is_bottom = false;
        self.graph.add_node(op)
    }

    /// Adds a serial (non-flow) precedence edge.
    pub fn serial(&mut self, from: NodeId, to: NodeId, latency: i64) -> EdgeId {
        let e = self.graph.add_edge(from, to, latency);
        self.edge_kinds.push(EdgeKind::Serial);
        e
    }

    /// Whether the graph built so far is acyclic. [`DdgBuilder::finish`]
    /// panics on cycles; validating parsers check first.
    pub fn is_acyclic(&self) -> bool {
        topo::is_acyclic(&self.graph)
    }

    /// The register types `n` defines a value of. [`DdgBuilder::flow`]
    /// panics when the source does not write the flow's type; validating
    /// parsers check first.
    pub fn writes(&self, n: NodeId) -> &[RegType] {
        &self.graph.node(n).writes
    }

    /// The minimum valid latency of a flow edge `from -> to`
    /// (`δw(from) − δr(to)`); [`DdgBuilder::flow`] panics below it.
    pub fn min_flow_latency(&self, from: NodeId, to: NodeId) -> i64 {
        self.graph.node(from).delta_w - self.graph.node(to).delta_r
    }

    /// Validates the DDG and closes it with the bottom node `⊥`:
    /// exit values (values without consumers) get a flow arc to `⊥`, and
    /// every other node gets a serial arc to `⊥` with its own latency.
    ///
    /// # Panics
    /// If the graph is cyclic.
    pub fn finish(mut self) -> Ddg {
        assert!(
            topo::is_acyclic(&self.graph),
            "a DDG must be acyclic: {:?}",
            topo::cycle_witness(&self.graph)
        );
        let num_types = self
            .graph
            .node_ids()
            .flat_map(|n| self.graph.node(n).writes.iter().map(|t| t.0 as usize + 1))
            .max()
            .unwrap_or(0);

        let bottom = self.graph.add_node(Operation {
            name: "⊥".into(),
            class: OpClass::Other,
            writes: Vec::new(),
            latency: 0,
            delta_w: 0,
            delta_r: 0,
            is_bottom: true,
        });

        let nodes: Vec<NodeId> = self.graph.node_ids().filter(|&n| n != bottom).collect();
        for u in nodes {
            let op = self.graph.node(u).clone();
            let mut linked = false;
            for &t in &op.writes {
                let has_consumer = self
                    .graph
                    .out_edges(u)
                    .any(|e| self.edge_kinds[e.index()] == EdgeKind::Flow(t));
                if !has_consumer {
                    // exit value: ⊥ consumes it
                    let e = self.graph.add_edge(u, bottom, op.latency.max(0));
                    self.edge_kinds.push(EdgeKind::Flow(t));
                    // lint:allow(D-04) DiGraph::add_edge allocates contiguous ids, so id == len holds by construction
                    debug_assert_eq!(e.index() + 1, self.edge_kinds.len());
                    linked = true;
                }
            }
            if !linked {
                // serial arc with the source operation's latency (paper)
                let e = self.graph.add_edge(u, bottom, op.latency.max(0));
                self.edge_kinds.push(EdgeKind::Serial);
                // lint:allow(D-04) DiGraph::add_edge allocates contiguous ids, so id == len holds by construction
                debug_assert_eq!(e.index() + 1, self.edge_kinds.len());
            }
        }

        Ddg {
            graph: self.graph,
            edge_kinds: self.edge_kinds,
            bottom,
            num_types,
            target: self.target,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ddg() -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(l1, add, 4, RegType::FLOAT);
        b.flow(l2, add, 4, RegType::FLOAT);
        b.flow(add, st, 3, RegType::FLOAT);
        b.finish()
    }

    #[test]
    fn bottom_closure() {
        let d = small_ddg();
        assert_eq!(d.num_ops(), 5); // 4 ops + ⊥
        let bot = d.bottom();
        assert!(d.graph().node(bot).is_bottom);
        // every non-bottom node reaches ⊥
        let lp = rs_graph::paths::longest_to(d.graph(), bot);
        for n in d.graph().node_ids() {
            assert!(lp[n.index()].is_some(), "{:?} must reach ⊥", n);
        }
        // ⊥ scheduled last in any topological order
        let order = topo::topo_sort(d.graph()).unwrap();
        assert_eq!(*order.last().unwrap(), bot);
    }

    #[test]
    fn values_and_consumers() {
        let d = small_ddg();
        let vals = d.values(RegType::FLOAT);
        assert_eq!(vals.len(), 3); // l1, l2, add (store writes nothing)
        assert!(d.values(RegType::INT).is_empty());
        let add = NodeId(2);
        let cons = d.consumers(NodeId(0), RegType::FLOAT);
        assert_eq!(cons, vec![add]);
        // add's value flows to the store only
        let cons_add = d.consumers(add, RegType::FLOAT);
        assert_eq!(cons_add, vec![NodeId(3)]);
    }

    #[test]
    fn exit_value_consumed_by_bottom() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let d = b.finish();
        let cons = d.consumers(v, RegType::INT);
        assert_eq!(cons, vec![d.bottom()]);
    }

    #[test]
    fn critical_path_counts_latency_into_bottom() {
        let d = small_ddg();
        // l -4-> add -3-> st -1-> ⊥
        assert_eq!(d.critical_path(), 8);
        assert!(d.horizon() >= d.critical_path());
    }

    #[test]
    fn vliw_delays() {
        let t = Target::vliw();
        assert_eq!(t.delta_w(OpClass::Load), 3);
        assert_eq!(t.delta_r(OpClass::Load), 0);
        assert_eq!(t.delta_w(OpClass::Store), 0);
        let t2 = t.with_latency(OpClass::Load, 10);
        assert_eq!(t2.delta_w(OpClass::Load), 9);
    }

    #[test]
    fn add_serial_keeps_kind_table() {
        let mut d = small_ddg();
        let e = d.add_serial(NodeId(0), NodeId(1), 1);
        assert_eq!(d.edge_kind(e), EdgeKind::Serial);
        assert!(d.is_acyclic());
        d.remove_edge(e);
        assert!(d.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "does not write")]
    fn flow_requires_written_type() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let a = b.op("a", OpClass::Store, None);
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        b.flow(a, c, 1, RegType::INT);
    }

    #[test]
    #[should_panic(expected = "at most one value per register type")]
    fn duplicate_type_definition_rejected() {
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op_multi("bad", OpClass::IntAlu, vec![RegType::INT, RegType::INT]);
    }

    #[test]
    fn multi_type_definition_accepted() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let n = b.op_multi(
            "divmod",
            OpClass::IntMul,
            vec![RegType::INT, RegType::FLOAT],
        );
        let d = b.finish();
        assert!(d.values(RegType::INT).contains(&n));
        assert!(d.values(RegType::FLOAT).contains(&n));
        assert_eq!(d.num_types(), 2);
        assert_eq!(d.reg_types().len(), 2);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_ddg_rejected() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let a = b.op("a", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        b.flow(a, c, 1, RegType::INT);
        b.serial(c, a, 0);
        b.finish();
    }

    #[test]
    fn node_with_consumed_value_gets_no_extra_bottom_arc_but_store_does() {
        let d = small_ddg();
        let st = NodeId(3);
        // the store writes nothing: must have a serial arc to ⊥
        let to_bottom: Vec<_> = d
            .graph()
            .out_edges(st)
            .filter(|&e| d.graph().dst(e) == d.bottom())
            .collect();
        assert_eq!(to_bottom.len(), 1);
        assert_eq!(d.edge_kind(to_bottom[0]), EdgeKind::Serial);
    }
}
