//! Global register saturation over an acyclic control-flow graph
//! (Section 6, "In the case of a global scheduler", and the conclusion:
//! *"In the presence of branches, global RS of an acyclic CFG is brought
//! back to RS in DAGs (basic blocs) by inserting entry and exit values with
//! the corresponding flow arcs."*).
//!
//! Per block, values that are **live-in** become *entry values* (pseudo
//! producer at the block top) and values that are **live-out** get an
//! *exit consumer* (pseudo flow arc keeping them alive to the block
//! bottom). Each block is then an ordinary DDG and the machinery of this
//! crate applies unchanged; the global saturation of a type is the maximum
//! over blocks.
//!
//! The paper also warns that a *global* allocator may need one register
//! more than `MAXLIVE` because of inserted `move` operations, and proposes
//! decrementing the available-register count: [`Cfg::effective_budget`]
//! implements exactly that.

use crate::heuristic::GreedyK;
use crate::model::{Ddg, DdgBuilder, OpClass, RegType, Target};
use crate::reduce::{ReduceOutcome, Reducer};
use rs_graph::NodeId;
use std::collections::BTreeMap;

/// Index of a basic block in a [`Cfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

struct BlockUnderConstruction {
    name: String,
    builder: DdgBuilder,
    live_in: Vec<(String, RegType, NodeId)>,
    live_out: Vec<(String, RegType)>,
}

/// Incremental CFG construction.
pub struct CfgBuilder {
    target: Target,
    blocks: Vec<BlockUnderConstruction>,
    edges: Vec<(BlockId, BlockId)>,
}

impl CfgBuilder {
    /// Starts a CFG against a target.
    pub fn new(target: Target) -> Self {
        CfgBuilder {
            target,
            blocks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds an empty basic block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(BlockUnderConstruction {
            name: name.into(),
            builder: DdgBuilder::new(self.target.clone()),
            live_in: Vec::new(),
            live_out: Vec::new(),
        });
        id
    }

    /// Adds a control-flow edge (must keep the CFG acyclic — loops are out
    /// of scope, as in the paper).
    pub fn branch(&mut self, from: BlockId, to: BlockId) {
        self.edges.push((from, to));
    }

    /// Adds an operation inside a block.
    pub fn op(
        &mut self,
        blk: BlockId,
        name: impl Into<String>,
        class: OpClass,
        writes: Option<RegType>,
    ) -> NodeId {
        self.blocks[blk.0].builder.op(name, class, writes)
    }

    /// Flow dependence inside a block.
    pub fn flow(&mut self, blk: BlockId, from: NodeId, to: NodeId, latency: i64, t: RegType) {
        self.blocks[blk.0].builder.flow(from, to, latency, t);
    }

    /// Serial dependence inside a block.
    pub fn serial(&mut self, blk: BlockId, from: NodeId, to: NodeId, latency: i64) {
        self.blocks[blk.0].builder.serial(from, to, latency);
    }

    /// Declares a value live-in to a block: inserts an *entry value*
    /// (pseudo producer). Returns its node, to be used as a flow source.
    pub fn live_in(&mut self, blk: BlockId, name: impl Into<String>, t: RegType) -> NodeId {
        let name = name.into();
        let n = self.blocks[blk.0]
            .builder
            .op(format!("entry {name}"), OpClass::Copy, Some(t));
        self.blocks[blk.0].live_in.push((name, t, n));
        n
    }

    /// Declares a value live-out of a block: an *exit consumer* keeps it
    /// alive to the block bottom (a flow arc to a pseudo reader).
    pub fn live_out(&mut self, blk: BlockId, def: NodeId, t: RegType, name: impl Into<String>) {
        let name = name.into();
        let block = &mut self.blocks[blk.0];
        let sink = block
            .builder
            .op(format!("exit {name}"), OpClass::Copy, None);
        let lat = 1; // the value must survive to the branch point
        block.builder.flow(def, sink, lat, t);
        block.live_out.push((name, t));
    }

    /// Finalizes all blocks. Panics if the CFG is cyclic.
    pub fn finish(self) -> Cfg {
        // validate CFG acyclicity with a simple Kahn pass
        let n = self.blocks.len();
        let mut indeg = vec![0usize; n];
        for &(_, to) in &self.edges {
            indeg[to.0] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        let mut head = 0;
        while head < queue.len() {
            let b = queue[head];
            head += 1;
            seen += 1;
            for &(from, to) in &self.edges {
                if from.0 == b {
                    indeg[to.0] -= 1;
                    if indeg[to.0] == 0 {
                        queue.push(to.0);
                    }
                }
            }
        }
        assert_eq!(seen, n, "the control-flow graph must be acyclic (no loops)");

        let blocks = self
            .blocks
            .into_iter()
            .map(|b| CfgBlock {
                name: b.name,
                live_in: b.live_in.iter().map(|(n, t, _)| (n.clone(), *t)).collect(),
                live_out: b.live_out,
                ddg: b.builder.finish(),
            })
            .collect();
        Cfg {
            blocks,
            edges: self.edges,
        }
    }
}

/// A finalized basic block: its DDG includes the entry/exit pseudo values.
pub struct CfgBlock {
    /// Block label.
    pub name: String,
    /// Live-in value names and types.
    pub live_in: Vec<(String, RegType)>,
    /// Live-out value names and types.
    pub live_out: Vec<(String, RegType)>,
    /// The block body as a self-contained DDG.
    pub ddg: Ddg,
}

/// An acyclic control-flow graph of DDG blocks.
pub struct Cfg {
    /// The blocks.
    pub blocks: Vec<CfgBlock>,
    /// Control-flow edges.
    pub edges: Vec<(BlockId, BlockId)>,
}

/// Global saturation analysis result.
#[derive(Clone, Debug)]
pub struct GlobalRs {
    /// Per-block saturation estimates.
    pub per_block: BTreeMap<String, usize>,
    /// The global saturation: the maximum over blocks.
    pub global: usize,
}

impl Cfg {
    /// The register budget each block must meet so that a *global*
    /// allocator with `r` registers always succeeds: one register is
    /// reserved for the possible extra `move` operations (the paper's
    /// de Werra-based argument that the optimal difference is at most one).
    pub fn effective_budget(r: usize) -> usize {
        r.saturating_sub(1).max(1)
    }

    /// Global register saturation of type `t`: max over blocks.
    pub fn global_saturation(&self, t: RegType) -> GlobalRs {
        let g = GreedyK::new();
        let per_block: BTreeMap<String, usize> = self
            .blocks
            .iter()
            .map(|b| (b.name.clone(), g.saturation(&b.ddg, t).saturation))
            .collect();
        let global = per_block.values().copied().max().unwrap_or(0);
        GlobalRs { per_block, global }
    }

    /// Reduces every block's saturation below the *effective* budget for
    /// `r` physical registers. Returns per-block outcomes.
    pub fn reduce_all(&mut self, t: RegType, r: usize) -> BTreeMap<String, ReduceOutcome> {
        let budget = Self::effective_budget(r);
        let reducer = Reducer::new();
        self.blocks
            .iter_mut()
            .map(|b| (b.name.clone(), reducer.reduce(&mut b.ddg, t, budget)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A diamond CFG:  entry -> {then, else} -> join, with a value defined
    /// in entry, used in both arms and in the join.
    fn diamond() -> Cfg {
        let mut c = CfgBuilder::new(Target::superscalar());
        let entry = c.add_block("entry");
        let then_b = c.add_block("then");
        let else_b = c.add_block("else");
        let join = c.add_block("join");
        c.branch(entry, then_b);
        c.branch(entry, else_b);
        c.branch(then_b, join);
        c.branch(else_b, join);

        // entry: x = load; y = load; both live out
        let x = c.op(entry, "load x", OpClass::Load, Some(RegType::FLOAT));
        let y = c.op(entry, "load y", OpClass::Load, Some(RegType::FLOAT));
        c.live_out(entry, x, RegType::FLOAT, "x");
        c.live_out(entry, y, RegType::FLOAT, "y");

        // then: t = x*y (x, y live in), t live out
        let xin = c.live_in(then_b, "x", RegType::FLOAT);
        let yin = c.live_in(then_b, "y", RegType::FLOAT);
        let t = c.op(then_b, "x*y", OpClass::FloatMul, Some(RegType::FLOAT));
        c.flow(then_b, xin, t, 1, RegType::FLOAT);
        c.flow(then_b, yin, t, 1, RegType::FLOAT);
        c.live_out(then_b, t, RegType::FLOAT, "t");

        // else: t = x+y
        let xin = c.live_in(else_b, "x", RegType::FLOAT);
        let yin = c.live_in(else_b, "y", RegType::FLOAT);
        let t = c.op(else_b, "x+y", OpClass::FloatAlu, Some(RegType::FLOAT));
        c.flow(else_b, xin, t, 1, RegType::FLOAT);
        c.flow(else_b, yin, t, 1, RegType::FLOAT);
        c.live_out(else_b, t, RegType::FLOAT, "t");

        // join: store t
        let tin = c.live_in(join, "t", RegType::FLOAT);
        let st = c.op(join, "store t", OpClass::Store, None);
        c.flow(join, tin, st, 1, RegType::FLOAT);

        c.finish()
    }

    #[test]
    fn per_block_and_global_saturation() {
        let cfg = diamond();
        let rs = cfg.global_saturation(RegType::FLOAT);
        assert_eq!(rs.per_block.len(), 4);
        // entry: x and y simultaneously alive (both live out) = 2
        assert_eq!(rs.per_block["entry"], 2);
        // arms: x, y alive, then t — entry values + result ≥ 2
        assert!(rs.per_block["then"] >= 2);
        assert_eq!(rs.per_block["join"], 1);
        assert_eq!(
            rs.global,
            *rs.per_block.values().max().unwrap(),
            "global RS is the max over blocks"
        );
    }

    #[test]
    fn effective_budget_reserves_move_register() {
        assert_eq!(Cfg::effective_budget(8), 7);
        assert_eq!(Cfg::effective_budget(2), 1);
        assert_eq!(Cfg::effective_budget(1), 1);
    }

    #[test]
    fn reduce_all_blocks() {
        let mut cfg = diamond();
        let before = cfg.global_saturation(RegType::FLOAT).global;
        assert!(before >= 2);
        let outcomes = cfg.reduce_all(RegType::FLOAT, 4); // effective 3
        assert_eq!(outcomes.len(), 4);
        for (name, o) in &outcomes {
            assert!(o.fits(), "block {name} failed: {:?}", o);
        }
        let after = cfg.global_saturation(RegType::FLOAT).global;
        assert!(after <= 3);
    }

    #[test]
    #[should_panic(expected = "acyclic")]
    fn cyclic_cfg_rejected() {
        let mut c = CfgBuilder::new(Target::superscalar());
        let a = c.add_block("a");
        let b = c.add_block("b");
        c.branch(a, b);
        c.branch(b, a);
        c.op(a, "nop", OpClass::Other, None);
        c.op(b, "nop", OpClass::Other, None);
        c.finish();
    }

    #[test]
    fn live_ranges_pin_entry_and_exit() {
        let cfg = diamond();
        let entry = &cfg.blocks[0];
        assert_eq!(entry.live_out.len(), 2);
        assert!(entry.live_in.is_empty());
        // exit pseudo-consumers keep x and y alive to the block bottom:
        // the block's RS counts both even though nothing in-block reads them
        let rs = GreedyK::new().saturation(&entry.ddg, RegType::FLOAT);
        assert_eq!(rs.saturation, 2);
    }
}
