//! A literature-style **time-indexed** intLP for register saturation, used
//! as the size baseline of experiment T3.
//!
//! The paper's headline modelling claim is that its formulation needs only
//! `O(n²)` integer variables and `O(m + n²)` constraints — "better than the
//! actual size complexity in the literature". Classic register-pressure
//! formulations (Gebotys-style / Kästner–Langenbach \[9\]) discretize time:
//! one assignment binary `z_{u,τ}` per operation and cycle, giving
//! `O(n·T)` variables and `O((m + Σ|Cons|)·T)` constraints, where the
//! horizon `T` itself grows with total latency — asymptotically and
//! practically larger.
//!
//! The encoding here is solvable (tests cross-check it against
//! [`crate::ilp::RsIlp`] on small DAGs), but its role is to be *measured*,
//! not used.

use crate::model::{Ddg, RegType};
use rs_graph::paths::{alap, asap};
use rs_lp::{Cmp, LinExpr, Model, Sense, VarId, VarKind};
use std::collections::BTreeMap;

/// Variable handles of the time-indexed model.
#[derive(Clone, Debug)]
pub struct TimeIndexedVars {
    /// `z_{u,τ} = 1` iff operation `u` issues at cycle `τ`.
    pub issue: BTreeMap<(rs_graph::NodeId, i64), VarId>,
    /// `w_{u,τ} = 1` iff value `u` is alive at cycle `τ`.
    pub alive: BTreeMap<(rs_graph::NodeId, i64), VarId>,
    /// The register-saturation objective variable.
    pub rs: VarId,
}

/// Builds the time-indexed saturation model (superscalar delays assumed:
/// `δr = δw = 0`, matching the classic formulations).
pub fn build_time_indexed_rs_model(ddg: &Ddg, t: RegType) -> (Model, TimeIndexedVars) {
    let horizon = ddg.horizon();
    let asap_v = asap(ddg.graph());
    let alap_v = alap(ddg.graph(), horizon);
    let mut m = Model::new(Sense::Maximize);

    // Issue binaries, one per op per feasible cycle; Σ_τ z_{u,τ} = 1.
    let mut issue = BTreeMap::new();
    for u in ddg.graph().node_ids() {
        let mut sum = LinExpr::new();
        for tau in asap_v[u.index()]..=alap_v[u.index()].max(asap_v[u.index()]) {
            let z = m.add_named_var(
                format!("z_{}_{}", u.index(), tau),
                VarKind::Binary,
                0.0,
                1.0,
            );
            issue.insert((u, tau), z);
            sum = sum + z;
        }
        m.add_constraint(sum, Cmp::Eq, 1.0);
    }

    // Disaggregated precedence: for (u, v, δ) and each cycle τ of v,
    // z_{v,τ} + Σ_{τ' > τ − δ} z_{u,τ'} ≤ 1.
    for e in ddg.graph().edge_ids() {
        let u = ddg.graph().src(e);
        let v = ddg.graph().dst(e);
        let lat = ddg.graph().latency(e);
        for tau in asap_v[v.index()]..=alap_v[v.index()].max(asap_v[v.index()]) {
            let mut lhs = LinExpr::from(issue[&(v, tau)]);
            let mut nontrivial = false;
            for tau_u in asap_v[u.index()]..=alap_v[u.index()].max(asap_v[u.index()]) {
                if tau_u > tau - lat {
                    lhs = lhs + issue[&(u, tau_u)];
                    nontrivial = true;
                }
            }
            if nontrivial {
                m.add_constraint(lhs, Cmp::Le, 1.0);
            }
        }
    }

    // Liveness binaries for values: alive at τ iff issued strictly before τ
    // and some consumer issues at or after τ (half-open lifetime (σ_u, kill]).
    let values = ddg.values(t);
    let mut alive = BTreeMap::new();
    for &u in &values {
        let consumers = ddg.consumers(u, t);
        for tau in (asap_v[u.index()] + 1)..=horizon {
            let w = m.add_named_var(
                format!("w_{}_{}", u.index(), tau),
                VarKind::Binary,
                0.0,
                1.0,
            );
            // w ≤ Σ_{τ' < τ} z_{u,τ'}
            let mut defined = LinExpr::new();
            for tau_u in asap_v[u.index()]..=alap_v[u.index()].max(asap_v[u.index()]) {
                if tau_u < tau {
                    defined = defined + issue[&(u, tau_u)];
                }
            }
            m.add_constraint(LinExpr::from(w) - defined, Cmp::Le, 0.0);
            // w ≤ Σ_c Σ_{τ'' ≥ τ} z_{c,τ''}
            let mut pending = LinExpr::new();
            for &c in &consumers {
                for tau_c in asap_v[c.index()]..=alap_v[c.index()].max(asap_v[c.index()]) {
                    if tau_c >= tau {
                        pending = pending + issue[&(c, tau_c)];
                    }
                }
            }
            m.add_constraint(LinExpr::from(w) - pending, Cmp::Le, 0.0);
            alive.insert((u, tau), w);
        }
    }

    // RS = max_τ Σ_u w_{u,τ}: selector y_τ, RS ≤ Σ_u w_{u,τ} + n(1 − y_τ).
    let n_vals = values.len() as f64;
    let rs = m.add_named_var("RS", VarKind::Integer, 0.0, n_vals);
    let mut ysum = LinExpr::new();
    for tau in 1..=horizon {
        let y = m.add_named_var(format!("y_{tau}"), VarKind::Binary, 0.0, 1.0);
        let mut count = LinExpr::new();
        for &u in &values {
            if let Some(&w) = alive.get(&(u, tau)) {
                count = count + w;
            }
        }
        // RS − Σw + n·y ≤ n
        m.add_constraint(LinExpr::from(rs) - count + (n_vals, y), Cmp::Le, n_vals);
        ysum = ysum + y;
    }
    m.add_constraint(ysum, Cmp::Eq, 1.0);
    m.set_objective(LinExpr::from(rs));

    (m, TimeIndexedVars { issue, alive, rs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ilp::RsIlp;
    use crate::model::{DdgBuilder, OpClass, Target};

    fn tiny() -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v1 = b.op("v1", OpClass::IntAlu, Some(RegType::INT));
        let v2 = b.op("v2", OpClass::IntAlu, Some(RegType::INT));
        let s = b.op("s", OpClass::Store, None);
        b.flow(v1, s, 1, RegType::INT);
        b.flow(v2, s, 1, RegType::INT);
        b.finish()
    }

    #[test]
    fn agrees_with_paper_formulation_on_tiny_dag() {
        let d = tiny();
        let (model, vars) = build_time_indexed_rs_model(&d, RegType::INT);
        let sol = rs_lp::solve(&model, &rs_lp::MilpConfig::default()).unwrap();
        let baseline_rs = sol.values[vars.rs.index()].round() as usize;
        let paper = RsIlp::new().saturation(&d, RegType::INT).unwrap();
        assert!(paper.proven_optimal);
        assert_eq!(baseline_rs, paper.saturation);
        assert_eq!(baseline_rs, 2);
    }

    #[test]
    fn baseline_model_is_larger() {
        let d = tiny();
        let (baseline, _) = build_time_indexed_rs_model(&d, RegType::INT);
        let (paper, _) = RsIlp::new().build_model(&d, RegType::INT);
        assert!(
            baseline.stats().variables() > paper.stats().variables(),
            "baseline {} vs paper {}",
            baseline.stats().variables(),
            paper.stats().variables()
        );
    }
}
