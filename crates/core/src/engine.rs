//! The batched register-saturation engine: [`GreedyK`]'s portfolio
//! heuristic re-hosted on a reusable [`AnalysisScratch`] so that analysing a
//! corpus of DAGs performs no steady-state heap allocation.
//!
//! [`crate::heuristic::GreedyK::saturation`] is the one-shot reference
//! implementation: per call it allocates transitive-closure rows, topological
//! buffers, longest-path tables and a fresh killed graph *per portfolio
//! candidate*. [`RsEngine`] computes the **identical** analysis (same
//! saturation, same witness antichain, same killing function — property-
//! tested in `tests/engine_equiv.rs`) while drawing every intermediate
//! structure from the scratch:
//!
//! - one topological order per DAG, shared by the longest-path table, the
//!   transitive closure and the killer position table;
//! - a pooled-row transitive closure ([`TransitiveClosure::build_into`]);
//! - a single [`KilledScratch`] rebuilt in place (graph `clone_from`, Kahn
//!   buffers, `LongestPaths::compute_into`) for every candidate killing
//!   function — the dominant cost of the portfolio + hill-climbing search;
//! - flat `Vec`-indexed score arrays and [`FlatKilling`] killer tables in
//!   place of the one-shot path's `BTreeMap`s;
//! - reusable Dilworth machinery ([`rs_graph::antichain::max_antichain_into`]).
//!
//! Only the returned [`RsAnalysis`] (witness vector + killing map) is
//! allocated per call — it is the output. Engines are cheap to create and
//! intentionally not `Sync`; parallel drivers (`rsat corpus`, `rs-bench`)
//! give each worker thread its own engine.

use crate::heuristic::{GreedyK, RsAnalysis};
use crate::killing::{
    killer_kills_before, topo_max_killing_into, FlatKilling, KilledScratch, KillingFunction,
};
use crate::model::{Ddg, RegType};
use crate::pipeline::{Pipeline, PipelineReport};
use crate::pkill::{potential_killers_into, PKill};
use crate::reduce::{ReduceOutcome, Reducer};
use rs_graph::antichain::{max_antichain_into, AntichainScratch};
use rs_graph::bitset::BitSetPool;
use rs_graph::closure::TransitiveClosure;
use rs_graph::paths::LongestPaths;
use rs_graph::{topo, NodeId};
use std::collections::BTreeMap;

/// Reusable working storage for one analysis worker. All buffers grow to
/// the corpus high-water mark and are then recycled; nothing is freed
/// between DAGs.
#[derive(Default)]
pub struct AnalysisScratch {
    // Base-graph structures (rebuilt once per DAG).
    order: Vec<NodeId>,
    indeg: Vec<usize>,
    pos: Vec<usize>,
    lp: LongestPaths,
    tc: TransitiveClosure,
    pool: BitSetPool,
    pk: PKill,
    values: Vec<NodeId>,
    // Killer score arrays, flat over dense node ids.
    is_value: Vec<bool>,
    coverage: Vec<u32>,
    value_desc: Vec<u32>,
    // Killing-function tables.
    killer: FlatKilling,
    fallback: FlatKilling,
    best: FlatKilling,
    trial: FlatKilling,
    ambiguous: Vec<NodeId>,
    // Per-candidate evaluation structures.
    killed: KilledScratch,
    before: Vec<(NodeId, NodeId)>,
    ac: AntichainScratch,
    antichain: Vec<NodeId>,
    best_antichain: Vec<NodeId>,
}

impl AnalysisScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Greedy orders of the portfolio — mirrors the (private) strategy list of
/// the one-shot path; the proptest equivalence suite keeps them locked
/// together.
#[derive(Clone, Copy)]
enum Strategy {
    CoverageFirst,
    DescendantsFirst,
    TopoMax,
}

const STRATEGIES: [Strategy; 3] = [
    Strategy::CoverageFirst,
    Strategy::DescendantsFirst,
    Strategy::TopoMax,
];

/// The batch analysis engine: [`GreedyK`] semantics, scratch-backed
/// execution.
///
/// ```
/// use rs_core::engine::RsEngine;
/// use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
///
/// let mut engine = RsEngine::new();
/// let mut b = DdgBuilder::new(Target::superscalar());
/// b.op("x", OpClass::IntAlu, Some(RegType::INT));
/// b.op("y", OpClass::IntAlu, Some(RegType::INT));
/// let ddg = b.finish();
///
/// let rs = engine.analyze(&ddg, RegType::INT);
/// assert_eq!(rs.saturation, 2);
/// // subsequent analyses reuse every internal buffer
/// assert_eq!(engine.analyze(&ddg, RegType::INT).saturation, 2);
/// ```
#[derive(Default)]
pub struct RsEngine {
    /// Heuristic parameters, shared with the one-shot path.
    pub params: GreedyK,
    /// Cooperative cancellation for the portfolio / hill-climb loops (see
    /// [`RsEngine::set_cancel`]). Default: never trips.
    cancel: rs_lp::Cancel,
    scratch: AnalysisScratch,
}

impl RsEngine {
    /// An engine with default [`GreedyK`] parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with explicit heuristic parameters.
    pub fn with_params(params: GreedyK) -> Self {
        RsEngine {
            params,
            ..Self::default()
        }
    }

    /// Installs a cancellation token for subsequent [`RsEngine::analyze`] /
    /// [`RsEngine::reduce_with`] calls. A tripped token makes `analyze`
    /// stop after its cheapest portfolio candidate (the answer is always a
    /// valid killing function — just possibly narrower than the full
    /// portfolio's) and makes reductions return their partial progress.
    /// Cancellation never corrupts the scratch: the next call on this
    /// engine behaves exactly like a call on a fresh engine (property-
    /// tested in `tests/engine_cancel.rs`).
    pub fn set_cancel(&mut self, cancel: rs_lp::Cancel) {
        self.cancel = cancel;
    }

    /// Removes any installed cancellation token.
    pub fn clear_cancel(&mut self) {
        self.cancel = rs_lp::Cancel::new();
    }

    /// Computes `RS*_t(ddg)` — identical to
    /// [`GreedyK::saturation`] with the same parameters, reusing this
    /// engine's scratch.
    pub fn analyze(&mut self, ddg: &Ddg, t: RegType) -> RsAnalysis {
        let max_repairs = self.params.max_repairs;
        let refine_passes = self.params.refine_passes;
        let cancel = self.cancel.clone();
        let s = &mut self.scratch;

        ddg.values_into(t, &mut s.values);
        if s.values.is_empty() {
            return RsAnalysis {
                reg_type: t,
                saturation: 0,
                saturating_values: Vec::new(),
                killing: KillingFunction {
                    reg_type: t,
                    killer: BTreeMap::new(),
                },
                provably_optimal: true,
            };
        }

        let n = ddg.num_ops();
        topo::topo_sort_into(ddg.graph(), &mut s.indeg, &mut s.order).expect("DDG is acyclic");
        s.lp.compute_into(ddg.graph(), &s.order);
        potential_killers_into(ddg, t, &s.lp, &mut s.pk);
        let unique_killing = s.pk.killing_function_count() == 1;
        let max_width = s.values.len();

        s.pos.clear();
        s.pos.resize(n, 0);
        for (i, &u) in s.order.iter().enumerate() {
            s.pos[u.index()] = i;
        }
        topo_max_killing_into(&s.pk, &s.pos, &mut s.fallback);
        s.tc.build_into(ddg.graph(), &s.order, &mut s.pool);

        // Killer score arrays (value-descendant counts fill lazily).
        s.is_value.clear();
        s.is_value.resize(n, false);
        for &u in &s.values {
            s.is_value[u.index()] = true;
        }
        s.coverage.clear();
        s.coverage.resize(n, 0);
        for (_, ks) in s.pk.iter() {
            for &k in ks {
                s.coverage[k.index()] += 1;
            }
        }
        s.value_desc.clear();
        s.value_desc.resize(n, u32::MAX);

        // Portfolio: best-of-three greedy orders, strictly-better wins (the
        // earliest strategy keeps ties) — exactly the one-shot policy.
        let mut best_width = usize::MAX;
        let mut have_best = false;
        let mut provably_optimal = false;
        for strategy in STRATEGIES {
            let killed_current = build_killing(ddg, s, strategy, max_repairs);
            let Some(width) = eval_current(ddg, s, killed_current) else {
                continue; // repair failed (cannot happen for TopoMax)
            };
            if !have_best || width > best_width {
                best_width = width;
                s.best.copy_from(&s.killer);
                std::mem::swap(&mut s.best_antichain, &mut s.antichain);
                provably_optimal = unique_killing || width == max_width;
                have_best = true;
            }
            if unique_killing {
                break;
            }
            // Cancellation: stop after the first successful candidate — the
            // portfolio only widens an already-valid answer. Checked *after*
            // the attempt so a tripped token still yields one candidate.
            if have_best && cancel.cancelled() {
                break;
            }
        }
        assert!(
            have_best,
            "TopoMax strategy always yields a valid killing function"
        );

        // Hill-climbing refinement over ambiguous killer choices.
        if !unique_killing && best_width < max_width {
            s.ambiguous.clear();
            s.ambiguous
                .extend(s.pk.iter().filter(|(_, ks)| ks.len() > 1).map(|(u, _)| u));
            'passes: for _pass in 0..refine_passes {
                let mut improved = false;
                for ai in 0..s.ambiguous.len() {
                    // One poll per ambiguous value: each trial below costs a
                    // full killed-graph rebuild, so the clock read is noise.
                    if cancel.cancelled() {
                        break 'passes;
                    }
                    let u = s.ambiguous[ai];
                    let current = s.best.of(u);
                    for ki in 0..s.pk.of(u).len() {
                        let alt = s.pk.of(u)[ki];
                        if alt == current || best_width == max_width {
                            continue;
                        }
                        s.trial.copy_from(&s.best);
                        s.trial.set(u, alt);
                        std::mem::swap(&mut s.trial, &mut s.killer);
                        let width = eval_current(ddg, s, false);
                        std::mem::swap(&mut s.trial, &mut s.killer);
                        if let Some(width) = width {
                            if width > best_width {
                                best_width = width;
                                std::mem::swap(&mut s.best_antichain, &mut s.antichain);
                                s.best.copy_from(&s.trial);
                                provably_optimal = width == max_width;
                                improved = true;
                                break; // re-read `current` for this value
                            }
                        }
                    }
                }
                if !improved || best_width == max_width {
                    break 'passes;
                }
            }
        }

        RsAnalysis {
            reg_type: t,
            saturation: best_width,
            saturating_values: s.best_antichain.clone(),
            killing: s.best.to_killing_function(t, &s.pk),
            provably_optimal,
        }
    }

    /// Analyses every register type present in the DAG, ascending.
    pub fn analyze_all(&mut self, ddg: &Ddg) -> Vec<RsAnalysis> {
        ddg.reg_types()
            .into_iter()
            .map(|t| self.analyze(ddg, t))
            .collect()
    }

    /// Analyses a batch of DAGs with one shared scratch — the throughput
    /// path of the corpus driver and the `rs_throughput` benchmark.
    pub fn analyze_batch<'a, I>(&mut self, batch: I) -> Vec<RsAnalysis>
    where
        I: IntoIterator<Item = (&'a Ddg, RegType)>,
    {
        batch
            .into_iter()
            .map(|(ddg, t)| self.analyze(ddg, t))
            .collect()
    }

    /// Reduces `RS_t(ddg)` below `r` with default [`Reducer`] settings,
    /// measuring saturation through this engine. Identical outcome to
    /// `Reducer::new().reduce(..)` with the same heuristic parameters.
    pub fn reduce(&mut self, ddg: &mut Ddg, t: RegType, r: usize) -> ReduceOutcome {
        let reducer = Reducer {
            heuristic: self.params.clone(),
            ..Reducer::new()
        };
        self.reduce_with(&reducer, ddg, t, r)
    }

    /// Reduction with explicit [`Reducer`] settings (budgets, exact
    /// verification), estimator-backed by this engine's scratch.
    pub fn reduce_with(
        &mut self,
        reducer: &Reducer,
        ddg: &mut Ddg,
        t: RegType,
        r: usize,
    ) -> ReduceOutcome {
        let cancel = self.cancel.clone();
        let mut estimate = |d: &Ddg, t: RegType| {
            let a = self.analyze(d, t);
            (a.saturation, a.saturating_values)
        };
        reducer.reduce_with(ddg, t, r, &mut estimate, &cancel)
    }

    /// Runs a [`Pipeline`] through this engine (see [`Pipeline::run_with`]).
    pub fn run_pipeline(&mut self, pipeline: &Pipeline, ddg: &mut Ddg) -> PipelineReport {
        pipeline.run_with(self, ddg)
    }
}

/// Builds the greedy killing function for `strategy` into `s.killer`,
/// repairing enforcement-arc cycles against the topological order — the
/// scratch twin of the one-shot `GreedyK::build_killing`. Returns `true`
/// when `s.killed` already holds the killed graph of the returned killer
/// (the successful repair probe built it), so [`eval_current`] can skip an
/// identical rebuild of the dominant structure.
fn build_killing(
    ddg: &Ddg,
    s: &mut AnalysisScratch,
    strategy: Strategy,
    max_repairs: usize,
) -> bool {
    if matches!(strategy, Strategy::TopoMax) {
        s.killer.copy_from(&s.fallback);
        return false;
    }
    let AnalysisScratch {
        pos,
        tc,
        pk,
        is_value,
        coverage,
        value_desc,
        killer,
        fallback,
        killed,
        ..
    } = s;
    let pk = &*pk;

    let mut vdesc = |k: NodeId| -> i64 {
        let cell = &mut value_desc[k.index()];
        if *cell == u32::MAX {
            *cell = tc.descendants(k).iter().filter(|&i| is_value[i]).count() as u32;
        }
        *cell as i64
    };
    let mut score = |k: NodeId| -> (i64, i64, i64) {
        let cov = coverage[k.index()] as i64;
        let desc = vdesc(k);
        match strategy {
            Strategy::CoverageFirst => (-cov, desc, -(pos[k.index()] as i64)),
            Strategy::DescendantsFirst => (desc, -cov, -(pos[k.index()] as i64)),
            Strategy::TopoMax => unreachable!(),
        }
    };

    killer.reset(pos.len());
    for (u, ks) in pk.iter() {
        killer.set(
            u,
            *ks.iter()
                .min_by_key(|&&k| score(k))
                .expect("pkill sets are nonempty"),
        );
    }

    // Cycle repair: re-point conflicting values at their topological-max
    // killer (arcs toward the topo-max killer always go forward).
    for _ in 0..max_repairs {
        if killed.build(ddg, pk, killer) {
            return true;
        }
        let mut flipped = false;
        for (u, ks) in pk.iter() {
            if ks.len() > 1 && killer.of(u) != fallback.of(u) {
                killer.set(u, fallback.of(u));
                flipped = true;
                break;
            }
        }
        if !flipped {
            break;
        }
    }
    killer.copy_from(fallback);
    false
}

/// Evaluates `s.killer`: rebuilds the killed graph (unless `killed_current`
/// says `s.killed` already holds it), derives the disjoint-value order, and
/// computes the maximum antichain into `s.antichain`. Returns `None` for an
/// invalid (cyclic) killing function.
fn eval_current(ddg: &Ddg, s: &mut AnalysisScratch, killed_current: bool) -> Option<usize> {
    let AnalysisScratch {
        pk,
        values,
        killer,
        killed,
        before,
        ac,
        antichain,
        ..
    } = s;
    if !killed_current && !killed.build(ddg, pk, killer) {
        return None;
    }
    before.clear();
    for &u in values.iter() {
        let ku = killer.of(u);
        for &w in values.iter() {
            if u != w && killer_kills_before(ddg, &killed.lp, ku, w) {
                before.push((u, w));
            }
        }
    }
    // `values` is ascending, so `before` came out sorted.
    // lint:allow(D-04) sortedness follows from iterating `values` ascending; binary_search misuse is covered by the differential tests
    debug_assert!(before.windows(2).all(|w| w[0] <= w[1]));
    let rel = |a: NodeId, b: NodeId| before.binary_search(&(a, b)).is_ok();
    Some(max_antichain_into(values, rel, ac, antichain))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::GreedyK;
    use crate::model::{DdgBuilder, OpClass, Target};

    fn fanout_chain_ddg(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..k {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        b.finish()
    }

    fn assert_same(a: &RsAnalysis, b: &RsAnalysis) {
        assert_eq!(a.saturation, b.saturation);
        assert_eq!(a.saturating_values, b.saturating_values);
        assert_eq!(a.killing, b.killing);
        assert_eq!(a.provably_optimal, b.provably_optimal);
    }

    #[test]
    fn matches_one_shot_on_small_ddgs() {
        let mut engine = RsEngine::new();
        let greedy = GreedyK::new();
        for k in 1..6 {
            let d = fanout_chain_ddg(k);
            for t in [RegType::FLOAT, RegType::INT] {
                assert_same(&engine.analyze(&d, t), &greedy.saturation(&d, t));
            }
        }
    }

    #[test]
    fn scratch_survives_size_changes() {
        // big → small → big: stale scratch state must never leak through
        let mut engine = RsEngine::new();
        let greedy = GreedyK::new();
        for &k in &[7usize, 1, 5, 2, 7] {
            let d = fanout_chain_ddg(k);
            let a = engine.analyze(&d, RegType::FLOAT);
            assert_same(&a, &greedy.saturation(&d, RegType::FLOAT));
            assert_eq!(a.saturation, k);
        }
    }

    #[test]
    fn engine_reduce_matches_reducer() {
        for budget in [1usize, 2, 3] {
            let mut d1 = fanout_chain_ddg(4);
            let mut d2 = d1.clone();
            let classic = Reducer::new().reduce(&mut d1, RegType::FLOAT, budget);
            let engine = RsEngine::new().reduce(&mut d2, RegType::FLOAT, budget);
            assert_eq!(classic.fits(), engine.fits());
            assert_eq!(classic.added_arcs(), engine.added_arcs());
            assert_eq!(d1.graph().edge_count(), d2.graph().edge_count());
        }
    }

    #[test]
    fn batch_api_covers_types() {
        let mut engine = RsEngine::new();
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op("i", OpClass::IntAlu, Some(RegType::INT));
        b.op("f", OpClass::FloatAlu, Some(RegType::FLOAT));
        let d = b.finish();
        let all = engine.analyze_all(&d);
        assert_eq!(all.len(), 2);
        let batch = engine.analyze_batch([(&d, RegType::INT), (&d, RegType::FLOAT)]);
        assert_eq!(batch[0].saturation, 1);
        assert_eq!(batch[1].saturation, 1);
    }
}
