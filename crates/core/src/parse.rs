//! A line-oriented text format for DDGs, so saturation analyses can be run
//! on graphs produced by external compilers (the paper's DDGs were
//! extracted from a compiler's IR; this is the interchange boundary).
//!
//! ```text
//! # comments and blank lines are ignored
//! target superscalar            # or: vliw
//! op   a   load    float        # name, class, value type (or "none")
//! op   b   fadd    float
//! op   st  store   none
//! flow a b 4 float              # producer, consumer, latency, type
//! flow b st 2 float
//! serial a st 1                 # plain precedence
//! ```
//!
//! Node names are arbitrary identifiers (no whitespace). [`parse_ddg`]
//! builds the closed DDG; [`print_ddg`] emits the same format (modulo the
//! virtual `⊥`, which is never printed), and the two round-trip.

use crate::model::{Ddg, DdgBuilder, EdgeKind, OpClass, RegType, Target};
use rs_graph::NodeId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parse failure, with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn class_of(s: &str) -> Option<OpClass> {
    Some(match s {
        "load" => OpClass::Load,
        "store" => OpClass::Store,
        "ialu" | "add" | "sub" => OpClass::IntAlu,
        "imul" => OpClass::IntMul,
        "falu" | "fadd" | "fsub" | "fcmp" => OpClass::FloatAlu,
        "fmul" => OpClass::FloatMul,
        "fdiv" | "fsqrt" => OpClass::FloatDiv,
        "copy" | "mov" => OpClass::Copy,
        "addr" | "lea" => OpClass::Addr,
        "other" | "nop" => OpClass::Other,
        _ => return None,
    })
}

fn class_name(c: OpClass) -> &'static str {
    match c {
        OpClass::Load => "load",
        OpClass::Store => "store",
        OpClass::IntAlu => "ialu",
        OpClass::IntMul => "imul",
        OpClass::FloatAlu => "falu",
        OpClass::FloatMul => "fmul",
        OpClass::FloatDiv => "fdiv",
        OpClass::Copy => "copy",
        OpClass::Addr => "addr",
        OpClass::Other => "other",
    }
}

fn type_of(s: &str) -> Option<Option<RegType>> {
    Some(match s {
        "int" => Some(RegType::INT),
        "float" => Some(RegType::FLOAT),
        "branch" => Some(RegType::BRANCH),
        "none" | "-" => None,
        _ => return None,
    })
}

fn type_name(t: RegType) -> &'static str {
    match t {
        RegType::INT => "int",
        RegType::FLOAT => "float",
        RegType::BRANCH => "branch",
        _ => "int",
    }
}

/// Parses the text format into a closed DDG.
///
/// ```
/// use rs_core::parse::parse_ddg;
/// use rs_core::model::RegType;
///
/// let ddg = parse_ddg("
///     target superscalar
///     op a load  float
///     op b store none
///     flow a b 4 float
/// ").unwrap();
/// assert_eq!(ddg.values(RegType::FLOAT).len(), 1);
/// assert_eq!(ddg.critical_path(), 5); // 4 to the store, 1 to ⊥
/// ```
pub fn parse_ddg(input: &str) -> Result<Ddg, ParseError> {
    let mut target: Option<Target> = None;
    let mut builder: Option<DdgBuilder> = None;
    let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "target" => {
                if builder.is_some() {
                    return Err(err(lineno, "`target` must precede all `op` lines"));
                }
                let t = match tokens.get(1) {
                    Some(&"superscalar") => Target::superscalar(),
                    Some(&"vliw") => Target::vliw(),
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown target {:?} (expected superscalar|vliw)", other),
                        ))
                    }
                };
                target = Some(t);
            }
            "op" => {
                if tokens.len() != 4 {
                    return Err(err(lineno, "usage: op <name> <class> <type|none>"));
                }
                let b = builder.get_or_insert_with(|| {
                    DdgBuilder::new(target.clone().unwrap_or_else(Target::superscalar))
                });
                let name = tokens[1];
                if nodes.contains_key(name) {
                    return Err(err(lineno, format!("duplicate op name `{name}`")));
                }
                let class = class_of(tokens[2])
                    .ok_or_else(|| err(lineno, format!("unknown op class `{}`", tokens[2])))?;
                let writes = type_of(tokens[3])
                    .ok_or_else(|| err(lineno, format!("unknown register type `{}`", tokens[3])))?;
                let id = b.op(name, class, writes);
                nodes.insert(name.to_string(), id);
            }
            "flow" => {
                if tokens.len() != 5 {
                    return Err(err(lineno, "usage: flow <src> <dst> <latency> <type>"));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "flow before any op"))?;
                let src = *nodes
                    .get(tokens[1])
                    .ok_or_else(|| err(lineno, format!("unknown op `{}`", tokens[1])))?;
                let dst = *nodes
                    .get(tokens[2])
                    .ok_or_else(|| err(lineno, format!("unknown op `{}`", tokens[2])))?;
                let lat: i64 = tokens[3]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad latency `{}`", tokens[3])))?;
                let ty = type_of(tokens[4])
                    .ok_or_else(|| err(lineno, format!("unknown register type `{}`", tokens[4])))?
                    .ok_or_else(|| err(lineno, "flow edges need a concrete type"))?;
                // The builder panics on model violations; a parser must
                // reject them as errors instead (a malformed corpus file may
                // not abort a batch run).
                if src == dst {
                    return Err(err(lineno, format!("self-loop on `{}`", tokens[1])));
                }
                if !b.writes(src).contains(&ty) {
                    return Err(err(
                        lineno,
                        format!("`{}` does not write a {} value", tokens[1], tokens[4]),
                    ));
                }
                let min = b.min_flow_latency(src, dst);
                if lat < min {
                    return Err(err(
                        lineno,
                        format!("flow latency {lat} below the target minimum {min}"),
                    ));
                }
                b.flow(src, dst, lat, ty);
            }
            "serial" => {
                if tokens.len() != 4 {
                    return Err(err(lineno, "usage: serial <src> <dst> <latency>"));
                }
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "serial before any op"))?;
                let src = *nodes
                    .get(tokens[1])
                    .ok_or_else(|| err(lineno, format!("unknown op `{}`", tokens[1])))?;
                let dst = *nodes
                    .get(tokens[2])
                    .ok_or_else(|| err(lineno, format!("unknown op `{}`", tokens[2])))?;
                let lat: i64 = tokens[3]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad latency `{}`", tokens[3])))?;
                if src == dst {
                    return Err(err(lineno, format!("self-loop on `{}`", tokens[1])));
                }
                b.serial(src, dst, lat);
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }

    let b = builder.ok_or_else(|| err(0, "empty input: no operations"))?;
    if !b.is_acyclic() {
        return Err(err(0, "dependence graph contains a cycle"));
    }
    Ok(b.finish())
}

/// Prints a DDG in the text format (the virtual `⊥` and its closure arcs
/// are omitted; re-parsing regenerates them).
pub fn print_ddg(ddg: &Ddg) -> String {
    let mut out = String::new();
    let kind = match ddg.target().kind {
        crate::model::TargetKind::Superscalar => "superscalar",
        crate::model::TargetKind::Vliw => "vliw",
    };
    let _ = writeln!(out, "target {kind}");
    let bottom = ddg.bottom();

    // stable printable names: sanitize whitespace and disambiguate
    // duplicates with the node index
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for n in ddg.graph().node_ids() {
        if n != bottom {
            let sanitized: String = ddg
                .graph()
                .node(n)
                .name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            *counts.entry(sanitized).or_insert(0) += 1;
        }
    }
    let name_of = |n: NodeId| -> String {
        let sanitized: String = ddg
            .graph()
            .node(n)
            .name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        if counts.get(&sanitized).copied().unwrap_or(0) > 1 {
            format!("{sanitized}.{}", n.index())
        } else {
            sanitized
        }
    };

    for n in ddg.graph().node_ids() {
        if n == bottom {
            continue;
        }
        let op = ddg.graph().node(n);
        let ty = op.writes.first().map_or("none", |&t| type_name(t));
        let _ = writeln!(out, "op {} {} {}", name_of(n), class_name(op.class), ty);
    }
    for e in ddg.graph().edge_ids() {
        let (src, dst) = (ddg.graph().src(e), ddg.graph().dst(e));
        if src == bottom || dst == bottom {
            continue;
        }
        match ddg.edge_kind(e) {
            EdgeKind::Flow(t) => {
                let _ = writeln!(
                    out,
                    "flow {} {} {} {}",
                    name_of(src),
                    name_of(dst),
                    ddg.graph().latency(e),
                    type_name(t)
                );
            }
            EdgeKind::Serial => {
                let _ = writeln!(
                    out,
                    "serial {} {} {}",
                    name_of(src),
                    name_of(dst),
                    ddg.graph().latency(e)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::GreedyK;

    const SAMPLE: &str = r#"
# two loads into an add, then a store
target superscalar
op  l1  load  float
op  l2  load  float
op  add fadd  float
op  st  store none
flow l1 add 4 float
flow l2 add 4 float
flow add st 2 float
serial l1 l2 1
"#;

    #[test]
    fn parses_sample() {
        let d = parse_ddg(SAMPLE).unwrap();
        assert_eq!(d.num_ops(), 5); // 4 + ⊥
        assert_eq!(d.values(RegType::FLOAT).len(), 3);
        assert_eq!(GreedyK::new().saturation(&d, RegType::FLOAT).saturation, 2);
    }

    #[test]
    fn model_violations_are_errors_not_panics() {
        // self-loop (flow and serial)
        let e = parse_ddg("op a load float\nflow a a 1 float\n").unwrap_err();
        assert!(e.to_string().contains("self-loop"), "{e}");
        assert_eq!(e.line, 2);
        let e = parse_ddg("op a load float\nserial a a 1\n").unwrap_err();
        assert!(e.to_string().contains("self-loop"), "{e}");
        // cycle through serial arcs
        let e = parse_ddg("op a load float\nop b store none\nserial a b 1\nserial b a 1\n")
            .unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
        // VLIW flow latency below δw(src) − δr(dst)
        let e = parse_ddg("target vliw\nop a load float\nop b store none\nflow a b 0 float\n")
            .unwrap_err();
        assert!(e.to_string().contains("latency"), "{e}");
        assert_eq!(e.line, 4);
        // flow through a type the source does not write
        let e = parse_ddg("op a load int\nop b store none\nflow a b 1 float\n").unwrap_err();
        assert!(e.to_string().contains("does not write"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn roundtrip_preserves_analysis() {
        let d = parse_ddg(SAMPLE).unwrap();
        let text = print_ddg(&d);
        let d2 = parse_ddg(&text).unwrap();
        assert_eq!(d.num_ops(), d2.num_ops());
        assert_eq!(d.graph().edge_count(), d2.graph().edge_count());
        assert_eq!(
            GreedyK::new().saturation(&d, RegType::FLOAT).saturation,
            GreedyK::new().saturation(&d2, RegType::FLOAT).saturation
        );
        assert_eq!(d.critical_path(), d2.critical_path());
    }

    #[test]
    fn vliw_and_multi_type_roundtrip() {
        let mut b = DdgBuilder::new(Target::vliw());
        let a = b.op("addr calc", OpClass::Addr, Some(RegType::INT));
        let l = b.op("ld", OpClass::Load, Some(RegType::FLOAT));
        let m = b.op("mul", OpClass::FloatMul, Some(RegType::FLOAT));
        b.serial(a, l, 1);
        b.flow(l, m, 4, RegType::FLOAT);
        let d = b.finish();
        let d2 = parse_ddg(&print_ddg(&d)).unwrap();
        assert_eq!(d2.num_ops(), d.num_ops());
        assert_eq!(d2.target().kind, d.target().kind);
        assert_eq!(d2.values(RegType::INT).len(), 1);
    }

    #[test]
    fn error_reporting() {
        assert!(parse_ddg("").is_err());
        let e = parse_ddg("op a load float\nflow a b 1 float").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown op `b`"));
        let e = parse_ddg("op a wat float").unwrap_err();
        assert!(e.message.contains("unknown op class"));
        let e = parse_ddg("op a load float\nop a load float").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = parse_ddg("op a load float\ntarget vliw").unwrap_err();
        assert!(e.message.contains("precede"));
        let e = parse_ddg("bogus directive").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let d = parse_ddg("  # leading comment\n\nop x ialu int # trailing\n").unwrap();
        assert_eq!(d.values(RegType::INT).len(), 1);
    }
}
