//! Spill insertion at the DDG level — the paper's stated future work:
//!
//! > "An important problem (let for a future work) is the minimal spill
//! > code insertion in data dependence graphs. The existing studies insert
//! > spill operations either in sequential codes (regardless on FUs usage),
//! > or by iterating ILP scheduling followed by spilling. We think that
//! > this problem must be taken into account at the data dependence graph
//! > level in order to break this iterative problem."
//!
//! When the saturation cannot be reduced below the register budget (the
//! [`crate::reduce::Reducer`] fails, i.e. spilling is unavoidable), this
//! pass transforms the *DDG itself* — before any scheduling — by splitting
//! a value's lifetime through memory:
//!
//! ```text
//!   u ──flow──► c1, c2, …            u ──flow──► store_u
//!                             ⇒      store_u ──serial──► reload_u
//!                                    reload_u ──flow──► c1, c2, …
//! ```
//!
//! The original value now dies at the store (a one-cycle lifetime); the
//! reloaded value carries the consumers. Saturation analysis and reduction
//! then run again on the transformed DAG — no schedule-then-spill
//! iteration ever happens.

use crate::exact::ExactRs;
use crate::heuristic::GreedyK;
use crate::model::{Ddg, DdgBuilder, EdgeKind, OpClass, Operation, RegType};
use crate::reduce::Reducer;
use rs_graph::NodeId;

/// Result of a successful spill-to-fit pass.
#[derive(Clone, Debug)]
pub struct SpillResult {
    /// The rebuilt DDG (spill code inserted, saturation reduced to budget).
    pub ddg: Ddg,
    /// Names of the spilled values, in insertion order.
    pub spilled_values: Vec<String>,
    /// Store operations inserted.
    pub stores_added: usize,
    /// Reload operations inserted.
    pub loads_added: usize,
    /// Serialization arcs added by the final reduction.
    pub reduction_arcs: usize,
    /// Exact saturation of the final DDG (when the exact search stayed in
    /// budget), else the heuristic estimate.
    pub rs_after: usize,
}

/// The DDG-level spill pass.
///
/// ```
/// use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
/// use rs_core::spill::SpillPass;
///
/// // a reducible DAG needs no memory traffic at all
/// let mut b = DdgBuilder::new(Target::superscalar());
/// for i in 0..3 {
///     let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT));
///     let s = b.op(format!("s{i}"), OpClass::Store, None);
///     b.flow(v, s, 4, RegType::FLOAT);
/// }
/// let ddg = b.finish();
///
/// let res = SpillPass::new().spill_to_fit(&ddg, RegType::FLOAT, 2).unwrap();
/// assert_eq!(res.stores_added, 0);
/// assert!(res.rs_after <= 2);
/// ```
#[derive(Clone, Debug)]
pub struct SpillPass {
    /// Maximum number of values to spill before giving up.
    pub max_spills: usize,
    /// Verify saturations exactly (recommended; the budgets here are the
    /// hard cases where the heuristic may under-estimate).
    pub verify_exact: bool,
}

impl Default for SpillPass {
    fn default() -> Self {
        SpillPass {
            max_spills: 16,
            verify_exact: true,
        }
    }
}

impl SpillPass {
    /// Creates the pass with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Brings `RS_t(ddg) ≤ r`, inserting spill code when serialization
    /// alone cannot. Returns `None` when even `max_spills` spills do not
    /// suffice (e.g. `r` is below the DAG's inherent operand width).
    pub fn spill_to_fit(&self, ddg: &Ddg, t: RegType, r: usize) -> Option<SpillResult> {
        let mut current = ddg.clone();
        let mut spilled_values = Vec::new();
        let reducer = Reducer {
            verify_exact: self.verify_exact,
            ..Reducer::new()
        };

        for _round in 0..=self.max_spills {
            let mut attempt = current.clone();
            let outcome = reducer.reduce(&mut attempt, t, r);
            if outcome.fits() {
                let rs_after = self.measure(&attempt, t);
                if rs_after <= r {
                    return Some(SpillResult {
                        ddg: attempt,
                        stores_added: spilled_values.len(),
                        loads_added: spilled_values.len(),
                        spilled_values,
                        reduction_arcs: outcome.added_arcs().len(),
                        rs_after,
                    });
                }
            }
            if spilled_values.len() == self.max_spills {
                break;
            }
            // Reduction failed: spill the unspilled saturating value with
            // the most consumers (ties: longest potential lifetime).
            let candidate = self.pick_spill_candidate(&current, t, &spilled_values)?;
            let name = current.graph().node(candidate).name.clone();
            current = spill_value(&current, t, candidate);
            spilled_values.push(name);
        }
        None
    }

    fn measure(&self, ddg: &Ddg, t: RegType) -> usize {
        if self.verify_exact {
            ExactRs::new().saturation(ddg, t).saturation
        } else {
            GreedyK::new().saturation(ddg, t).saturation
        }
    }

    fn pick_spill_candidate(&self, ddg: &Ddg, t: RegType, already: &[String]) -> Option<NodeId> {
        let analysis = GreedyK::new().saturation(ddg, t);
        let lp = rs_graph::paths::LongestPaths::new(ddg.graph());
        analysis
            .saturating_values
            .iter()
            .copied()
            // don't re-spill reload values or already-spilled ones
            .filter(|&v| {
                let op = ddg.graph().node(v);
                !op.name.starts_with("reload ") && !already.contains(&op.name)
            })
            .max_by_key(|&v| {
                let consumers = ddg.consumers(v, t);
                let span: i64 = consumers
                    .iter()
                    .filter_map(|&c| lp.lp(v, c))
                    .max()
                    .unwrap_or(0);
                (consumers.len(), span, std::cmp::Reverse(v))
            })
    }
}

/// Rebuilds the DDG with value `victim` (of type `t`) spilled: a store
/// consumes it immediately, a reload re-produces it for every original
/// consumer.
pub fn spill_value(ddg: &Ddg, t: RegType, victim: NodeId) -> Ddg {
    let g = ddg.graph();
    let bottom = ddg.bottom();
    let mut b = DdgBuilder::new(ddg.target().clone());

    // 1. Re-add every non-bottom operation, remembering the id mapping.
    let mut map: Vec<Option<NodeId>> = vec![None; g.node_count()];
    for n in g.node_ids() {
        if n == bottom {
            continue;
        }
        map[n.index()] = Some(b.add_operation(g.node(n).clone()));
    }

    // 2. The spill pair.
    let store_lat = ddg.target().latency(OpClass::Store);
    let load_lat = ddg.target().latency(OpClass::Load);
    let victim_name = g.node(victim).name.clone();
    let store = b.add_operation(Operation {
        name: format!("spill {victim_name}"),
        class: OpClass::Store,
        writes: Vec::new(),
        latency: store_lat,
        delta_w: ddg.target().delta_w(OpClass::Store),
        delta_r: ddg.target().delta_r(OpClass::Store),
        is_bottom: false,
    });
    let reload = b.add_operation(Operation {
        name: format!("reload {victim_name}"),
        class: OpClass::Load,
        writes: vec![t],
        latency: load_lat,
        delta_w: ddg.target().delta_w(OpClass::Load),
        delta_r: ddg.target().delta_r(OpClass::Load),
        is_bottom: false,
    });

    // 3. Re-add edges, redirecting the victim's type-t flow to the reload.
    let new_victim = map[victim.index()].expect("victim is not ⊥");
    for e in g.edge_ids() {
        let (src, dst) = (g.src(e), g.dst(e));
        if src == bottom || dst == bottom {
            continue; // ⊥ closure is regenerated by finish()
        }
        let lat = g.latency(e);
        let (src2, dst2) = (map[src.index()].unwrap(), map[dst.index()].unwrap());
        match ddg.edge_kind(e) {
            EdgeKind::Flow(ft) if ft == t && src == victim => {
                // consumer now reads the reloaded value, at load latency
                b.flow(reload, dst2, load_lat, t);
            }
            EdgeKind::Flow(ft) => {
                b.flow(src2, dst2, lat, ft);
            }
            EdgeKind::Serial => {
                b.serial(src2, dst2, lat);
            }
        }
    }
    // the store consumes the victim right away; the reload follows the
    // store through memory
    b.flow(new_victim, store, g.node(victim).latency.max(1), t);
    b.serial(store, reload, store_lat.max(1));

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime;
    use crate::model::Target;

    /// A value `L` defined first and read last, across `k` short
    /// independent def-use chains. Serialization can interleave the short
    /// chains (RS → 2: `L` + one chain) but can never go below 2 — `L`
    /// spans everything. Spilling `L` through memory CAN reach 1.
    fn long_lived_ddg(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let l = b.op("L", OpClass::Load, Some(RegType::FLOAT));
        let f = b.op("final", OpClass::Store, None);
        b.flow(l, f, 4, RegType::FLOAT);
        let mut prev = l;
        for i in 0..k {
            let v = b.op(format!("v{i}"), OpClass::FloatAlu, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 3, RegType::FLOAT);
            // the chains sit between L's definition and its use
            b.serial(prev, v, 1);
            b.serial(s, f, 1);
            prev = l;
        }
        b.finish()
    }

    /// k values all read by one combiner: every operand is alive at the
    /// read, so no transformation can go below k.
    fn combiner_ddg(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let mut vals = Vec::new();
        for i in 0..k {
            vals.push(b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT)));
        }
        let sink = b.op("combine", OpClass::FloatAlu, Some(RegType::FLOAT));
        for &v in &vals {
            b.flow(v, sink, 4, RegType::FLOAT);
        }
        b.finish()
    }

    #[test]
    fn spill_value_rebuilds_consistently() {
        let d = combiner_ddg(3);
        let victim = d.values(RegType::FLOAT)[0];
        let spilled = spill_value(&d, RegType::FLOAT, victim);
        assert!(spilled.is_acyclic());
        // two extra ops
        assert_eq!(spilled.num_ops(), d.num_ops() + 2);
        // the victim's only float consumer is now the store
        let new_victim = rs_graph::NodeId(victim.0);
        let cons = spilled.consumers(new_victim, RegType::FLOAT);
        assert_eq!(cons.len(), 1);
        assert!(spilled.graph().node(cons[0]).name.starts_with("spill "));
        // a valid schedule still exists
        let s = lifetime::asap_schedule(&spilled);
        assert!(lifetime::is_valid_schedule(&spilled, &s));
    }

    #[test]
    fn spilling_reduces_unreducible_pressure() {
        let d = long_lived_ddg(3);
        // L overlaps every chain: serialization alone cannot reach R = 1.
        let mut plain = d.clone();
        let plain_out = Reducer {
            verify_exact: true,
            ..Reducer::new()
        }
        .reduce(&mut plain, RegType::FLOAT, 1);
        assert!(!plain_out.fits(), "serialization alone must fail at R=1");

        let res = SpillPass::new()
            .spill_to_fit(&d, RegType::FLOAT, 1)
            .expect("spilling L must succeed at R=1");
        assert!(res.stores_added >= 1);
        assert_eq!(res.stores_added, res.loads_added);
        assert!(res.spilled_values.iter().any(|n| n == "L"));
        assert!(res.rs_after <= 1, "rs_after = {}", res.rs_after);
        assert!(res.ddg.is_acyclic());
    }

    #[test]
    fn no_spill_needed_when_reducible() {
        // independent chains reduce without memory traffic
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..4 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        let d = b.finish();
        let res = SpillPass::new()
            .spill_to_fit(&d, RegType::FLOAT, 2)
            .unwrap();
        assert_eq!(res.stores_added, 0, "no spill code for a reducible DAG");
        assert!(res.rs_after <= 2);
    }

    #[test]
    fn impossible_budget_returns_none() {
        // a binary combiner needs both operands alive at its read: R = 1 is
        // impossible for ANY transformation (spill reloads are values too)
        let d = combiner_ddg(2);
        assert!(SpillPass::new()
            .spill_to_fit(&d, RegType::FLOAT, 1)
            .is_none());
    }

    #[test]
    fn spilled_dag_register_need_is_bounded_by_saturation() {
        let d = long_lived_ddg(4);
        let budget = 2;
        let res = SpillPass::new()
            .spill_to_fit(&d, RegType::FLOAT, budget)
            .expect("R=2 must be reachable");
        // any schedule of the final DAG needs at most rs_after registers
        let sigma = lifetime::asap_schedule(&res.ddg);
        let rn = lifetime::register_need(&res.ddg, RegType::FLOAT, &sigma);
        assert!(
            rn <= res.rs_after,
            "ASAP need {rn} exceeds reduced saturation {}",
            res.rs_after
        );
        assert!(res.rs_after <= budget);
    }
}
