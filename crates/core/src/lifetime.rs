//! Lifetime intervals, killing dates, and the register need `RN_σ^t(G)` of a
//! fixed schedule.
//!
//! Given a schedule `σ`, the lifetime of a value `u^t` is the left-open
//! interval
//!
//! ```text
//! LT_σ(u^t) = ( σ(u) + δw(u),  max_{v ∈ Cons(u^t)} (σ(v) + δr(v)) ]
//! ```
//!
//! (a value written at cycle `c` is available one step later). The register
//! need is the maximal number of values simultaneously alive — the maximal
//! clique of the (interval) interference graph.

use crate::model::{Ddg, RegType};
use rs_graph::interval::{max_overlap, max_overlap_witness, Interval};
use rs_graph::NodeId;

/// Whether `sigma` (indexed by node) is a valid schedule of the DDG:
/// `σ(v) − σ(u) ≥ δ(e)` for every edge.
pub fn is_valid_schedule(ddg: &Ddg, sigma: &[i64]) -> bool {
    assert_eq!(sigma.len(), ddg.num_ops(), "schedule arity mismatch");
    ddg.graph().edge_ids().all(|e| {
        let u = ddg.graph().src(e);
        let v = ddg.graph().dst(e);
        sigma[v.index()] - sigma[u.index()] >= ddg.graph().latency(e)
    })
}

/// Killing date of value `u^t` under `sigma`:
/// `max_{v ∈ Cons(u^t)} (σ(v) + δr(v))`.
///
/// Every value has at least one consumer after bottom-closure, so this never
/// needs a default.
pub fn killing_date(ddg: &Ddg, t: RegType, sigma: &[i64], u: NodeId) -> i64 {
    ddg.consumers(u, t)
        .iter()
        .map(|&v| sigma[v.index()] + ddg.delta_r(v))
        .max()
        .unwrap_or_else(|| panic!("value {:?} has no consumer — DDG not bottom-closed?", u))
}

/// Definition date of value `u^t` under `sigma`: `σ(u) + δw(u)`.
pub fn definition_date(ddg: &Ddg, sigma: &[i64], u: NodeId) -> i64 {
    sigma[u.index()] + ddg.delta_w(u)
}

/// Lifetime intervals of all type-`t` values under `sigma`, paired with
/// their defining node.
pub fn lifetime_intervals(ddg: &Ddg, t: RegType, sigma: &[i64]) -> Vec<(NodeId, Interval)> {
    ddg.values(t)
        .into_iter()
        .map(|u| {
            let start = definition_date(ddg, sigma, u);
            let end = killing_date(ddg, t, sigma, u);
            (u, Interval::new(start, end))
        })
        .collect()
}

/// `RN_σ^t(G)`: the register need of type `t` under schedule `sigma`.
pub fn register_need(ddg: &Ddg, t: RegType, sigma: &[i64]) -> usize {
    // lint:allow(D-04) validity is checked once at the producer (ILP extraction, enumerator); re-checking O(E) per evaluation would dominate the search loop
    debug_assert!(is_valid_schedule(ddg, sigma), "invalid schedule");
    let intervals: Vec<Interval> = lifetime_intervals(ddg, t, sigma)
        .into_iter()
        .map(|(_, iv)| iv)
        .collect();
    max_overlap(&intervals)
}

/// The register need together with a witness *saturating set*: values all
/// alive at one cycle.
pub fn saturating_values(ddg: &Ddg, t: RegType, sigma: &[i64]) -> (usize, Vec<NodeId>) {
    let pairs = lifetime_intervals(ddg, t, sigma);
    let intervals: Vec<Interval> = pairs.iter().map(|&(_, iv)| iv).collect();
    let (k, _, members) = max_overlap_witness(&intervals);
    (k, members.into_iter().map(|i| pairs[i].0).collect())
}

/// The as-soon-as-possible schedule of the DDG (a canonical valid schedule).
pub fn asap_schedule(ddg: &Ddg) -> Vec<i64> {
    rs_graph::paths::asap(ddg.graph())
}

/// The as-late-as-possible schedule against `horizon`.
pub fn alap_schedule(ddg: &Ddg, horizon: i64) -> Vec<i64> {
    rs_graph::paths::alap(ddg.graph(), horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};

    /// Two independent loads into one add, then store (superscalar).
    fn ddg() -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(l1, add, 4, RegType::FLOAT);
        b.flow(l2, add, 4, RegType::FLOAT);
        b.flow(add, st, 3, RegType::FLOAT);
        b.finish()
    }

    #[test]
    fn asap_is_valid() {
        let d = ddg();
        let s = asap_schedule(&d);
        assert!(is_valid_schedule(&d, &s));
        let horizon = d.horizon();
        let alap = alap_schedule(&d, horizon);
        assert!(is_valid_schedule(&d, &alap));
    }

    #[test]
    fn parallel_loads_need_two_registers() {
        let d = ddg();
        let s = asap_schedule(&d); // both loads at 0
        assert_eq!(register_need(&d, RegType::FLOAT, &s), 2);
        let (k, vals) = saturating_values(&d, RegType::FLOAT, &s);
        assert_eq!(k, 2);
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn sequential_schedule_needs_one_fewer() {
        let d = ddg();
        // stagger the loads so l1 dies as late as possible... actually with
        // one consumer (add) both die at the add; staggering cannot help
        // here, so force the add between them is impossible — instead verify
        // a schedule where l2 issues after the add is invalid, and the need
        // stays 2 for any valid schedule (both die at the same consumer).
        let mut s = asap_schedule(&d);
        // push l2 close to the add: l2 at t, add at t+4
        s[1] = 5;
        s[2] = 9;
        s[3] = 12;
        s[4] = 20;
        assert!(is_valid_schedule(&d, &s));
        assert_eq!(register_need(&d, RegType::FLOAT, &s), 2);
    }

    #[test]
    fn killing_and_definition_dates() {
        let d = ddg();
        let s = asap_schedule(&d);
        let l1 = rs_graph::NodeId(0);
        let add = rs_graph::NodeId(2);
        assert_eq!(definition_date(&d, &s, l1), 0);
        // l1 is killed by the add at σ(add) + δr = 4
        assert_eq!(killing_date(&d, RegType::FLOAT, &s, l1), 4);
        // add's value is killed by the store at 4 + 3 = 7
        assert_eq!(killing_date(&d, RegType::FLOAT, &s, add), 7);
    }

    #[test]
    fn invalid_schedule_detected() {
        let d = ddg();
        let mut s = asap_schedule(&d);
        s[2] = 1; // add before its operands arrive
        assert!(!is_valid_schedule(&d, &s));
    }

    #[test]
    fn vliw_write_delay_shifts_definition() {
        let mut b = DdgBuilder::new(Target::vliw());
        let l = b.op("l", OpClass::Load, Some(RegType::FLOAT)); // δw = 3
        let u = b.op("u", OpClass::FloatAlu, Some(RegType::FLOAT));
        b.flow(l, u, 4, RegType::FLOAT);
        let d = b.finish();
        let s = asap_schedule(&d);
        assert_eq!(definition_date(&d, &s, l), 3);
        // the load's register is only occupied from cycle 4 (interval left-open at 3)
        let ivs = lifetime_intervals(&d, RegType::FLOAT, &s);
        let (_, iv) = ivs.iter().find(|(n, _)| *n == l).unwrap();
        assert_eq!(iv.start, 3);
        assert_eq!(iv.end, 4); // killed by u's read at σ(u)=4 + δr 0
    }

    #[test]
    fn exit_values_live_until_bottom() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let a = b.op("a", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("b", OpClass::IntAlu, Some(RegType::INT));
        b.serial(a, c, 1);
        let d = b.finish();
        let s = asap_schedule(&d);
        // both values flow to ⊥; at σ(⊥) both still alive
        assert_eq!(register_need(&d, RegType::INT, &s), 2);
    }
}
