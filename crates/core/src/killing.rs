//! Killing functions, the killed (extended) graph `G_{→k}`, and the
//! disjoint-value DAG `DV_k(G)` whose maximum antichain is the register
//! saturation for a fixed killing choice (Touati \[14\]).
//!
//! Fixing a killing function `k` (one designated last reader per value)
//! turns the NP-complete saturation problem into polynomial machinery:
//!
//! 1. enforce each choice with serial arcs `v → k(u)` of latency
//!    `δr(v) − δr(k(u))` from every other potential killer `v`;
//! 2. in the resulting graph, value `u` always dies before value `w` is
//!    defined iff `lp(k(u), w) ≥ δr(k(u)) − δw(w)` — these pairs form the
//!    strict partial order `DV_k`;
//! 3. the values that *can* be simultaneously alive are exactly the
//!    antichains of `DV_k`, so `RS_k = width(DV_k)` (computed by Dilworth /
//!    Hopcroft–Karp in `rs-graph`).

use crate::model::{Ddg, Operation, RegType};
use crate::pkill::PKill;
use rs_graph::antichain::max_antichain;
use rs_graph::paths::LongestPaths;
use rs_graph::{topo, DiGraph, NodeId};
use std::collections::BTreeMap;

/// A killing function for one register type: `k(u) ∈ pkill(u)` per value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KillingFunction {
    /// The register type this function applies to.
    pub reg_type: RegType,
    /// Chosen killer per value.
    pub killer: BTreeMap<NodeId, NodeId>,
}

impl KillingFunction {
    /// The chosen killer of value `u`.
    pub fn of(&self, u: NodeId) -> NodeId {
        self.killer[&u]
    }

    /// Checks `k(u) ∈ pkill(u)` for every value.
    pub fn respects(&self, pk: &PKill) -> bool {
        self.killer.len() == pk.len()
            && self
                .killer
                .iter()
                .all(|(u, k)| pk.get(*u).is_some_and(|ks| ks.contains(k)))
    }
}

/// Sentinel killer id for nodes that are not values ([`FlatKilling`]).
const NO_KILLER: u32 = u32::MAX;

/// A killing function stored as a flat array indexed by node id — the
/// hot-path representation of the batch engine. Semantically identical to
/// [`KillingFunction`] (which it converts to for results); node ids are
/// dense, so lookup is one bounds-checked load instead of a `BTreeMap`
/// descent, and reuse across candidates is a `copy_from_slice`.
#[derive(Clone, Debug, Default)]
pub struct FlatKilling {
    killer: Vec<u32>,
}

impl FlatKilling {
    /// Clears the function for a DAG of `num_ops` nodes (all nodes unset).
    pub fn reset(&mut self, num_ops: usize) {
        self.killer.clear();
        self.killer.resize(num_ops, NO_KILLER);
    }

    /// Sets `k(u) = k`.
    #[inline]
    pub fn set(&mut self, u: NodeId, k: NodeId) {
        self.killer[u.index()] = k.0;
    }

    /// The chosen killer of value `u`. Panics (debug) if unset.
    #[inline]
    pub fn of(&self, u: NodeId) -> NodeId {
        let k = self.killer[u.index()];
        // Promoted from a debug assertion: an unset entry silently aliasing
        // NodeId(u32::MAX) would corrupt every downstream killed graph.
        assert_ne!(k, NO_KILLER, "no killer chosen for {u:?}");
        NodeId(k)
    }

    /// Copies another function of the same DAG over this one.
    pub fn copy_from(&mut self, other: &FlatKilling) {
        self.killer.clear();
        self.killer.extend_from_slice(&other.killer);
    }

    /// Materializes the map-based [`KillingFunction`] over `pk`'s values.
    pub fn to_killing_function(&self, t: RegType, pk: &PKill) -> KillingFunction {
        KillingFunction {
            reg_type: t,
            killer: pk.values().iter().map(|&u| (u, self.of(u))).collect(),
        }
    }
}

/// The extended graph `G_{→k}` plus its longest-path table.
#[derive(Clone, Debug)]
pub struct KilledGraph {
    /// `G` with the killing-enforcement arcs added.
    pub graph: DiGraph<Operation>,
    /// All-pairs longest paths of the extended graph.
    pub lp: LongestPaths,
}

/// Builds `G_{→k}`: for each value `u` and each other potential killer
/// `v ∈ pkill(u) ∖ {k(u)}`, adds `v → k(u)` with latency
/// `δr(v) − δr(k(u))` (zero on superscalar), forcing `k(u)` to read last.
///
/// Returns `None` if the arcs create a cycle — the killing function is
/// invalid.
pub fn killed_graph(ddg: &Ddg, pk: &PKill, k: &KillingFunction) -> Option<KilledGraph> {
    let mut g = ddg.graph().clone();
    for (u, killers) in pk.iter() {
        let ku = k.of(u);
        // lint:allow(D-04) enumerators draw k(u) from pkill(u) by construction; cross-checked by the differential tests
        debug_assert!(killers.contains(&ku), "killer not in pkill({u:?})");
        for &v in killers {
            if v == ku {
                continue;
            }
            let lat = ddg.delta_r(v) - ddg.delta_r(ku);
            g.add_edge(v, ku, lat);
        }
    }
    if !topo::is_acyclic(&g) {
        return None;
    }
    let lp = LongestPaths::new(&g);
    Some(KilledGraph { graph: g, lp })
}

/// Scratch for repeated killed-graph construction: the extended graph, its
/// topological-sort buffers, and the longest-path table, all reused across
/// candidate killing functions and across DAGs. One [`KilledScratch::build`]
/// in the steady state performs no heap allocation.
#[derive(Clone, Debug)]
pub struct KilledScratch {
    /// `G_{→k}` of the last successful build.
    pub graph: DiGraph<Operation>,
    /// All-pairs longest paths of `graph`.
    pub lp: LongestPaths,
    order: Vec<NodeId>,
    indeg: Vec<usize>,
}

impl Default for KilledScratch {
    fn default() -> Self {
        KilledScratch {
            graph: DiGraph::new(),
            lp: LongestPaths::empty(),
            order: Vec::new(),
            indeg: Vec::new(),
        }
    }
}

impl KilledScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds `G_{→k}` for the flat killing `k` in place. Returns `false`
    /// (without computing longest paths) when the enforcement arcs create a
    /// cycle — the killing function is invalid. Validity and the resulting
    /// `lp` agree exactly with [`killed_graph`].
    pub fn build(&mut self, ddg: &Ddg, pk: &PKill, k: &FlatKilling) -> bool {
        self.graph.clone_from_graph(ddg.graph());
        for (u, killers) in pk.iter() {
            let ku = k.of(u);
            // lint:allow(D-04) enumerators draw k(u) from pkill(u) by construction; cross-checked by the differential tests
            debug_assert!(killers.contains(&ku), "killer not in pkill({u:?})");
            for &v in killers {
                if v == ku {
                    continue;
                }
                let lat = ddg.delta_r(v) - ddg.delta_r(ku);
                self.graph.add_edge(v, ku, lat);
            }
        }
        if topo::topo_sort_into(&self.graph, &mut self.indeg, &mut self.order).is_err() {
            return false;
        }
        self.lp.compute_into(&self.graph, &self.order);
        true
    }
}

/// The kill-before-definition criterion shared by every DV construction:
/// with `ku` the designated last reader of some value, that value is dead
/// no later than `w`'s definition iff `lp(ku, w) ≥ δr(ku) − δw(w)` (with
/// `ku = w` meaning `w` itself reads last, compared via the delays alone).
#[inline]
pub fn killer_kills_before(ddg: &Ddg, lp: &LongestPaths, ku: NodeId, w: NodeId) -> bool {
    if ku == w {
        return ddg.delta_r(ku) <= ddg.delta_w(w);
    }
    match lp.lp(ku, w) {
        Some(d) => d >= ddg.delta_r(ku) - ddg.delta_w(w),
        None => false,
    }
}

/// The disjoint-value order: in `G_{→k}`, value `u` always dies no later
/// than value `w` is defined iff
/// `lp(k(u), w) ≥ δr(k(u)) − δw(w)` (with `k(u) = w` meaning `w` itself is
/// the last reader, compared via the delays alone).
pub fn dv_before(
    ddg: &Ddg,
    killed: &KilledGraph,
    k: &KillingFunction,
    u: NodeId,
    w: NodeId,
) -> bool {
    u != w && killer_kills_before(ddg, &killed.lp, k.of(u), w)
}

/// The disjoint-value DAG of one killing function, with its maximum
/// antichain (= saturating values) precomputed.
#[derive(Clone, Debug)]
pub struct DisjointValueDag {
    /// The register type analysed.
    pub reg_type: RegType,
    /// The values (poset elements).
    pub values: Vec<NodeId>,
    /// Strict order pairs `u < w` (u dies before w is defined), dense.
    pub before: Vec<(NodeId, NodeId)>,
    /// A maximum antichain: a set of values that some schedule makes
    /// simultaneously alive.
    pub saturating: Vec<NodeId>,
    /// `RS_k` = antichain width.
    pub width: usize,
}

/// Builds `DV_k` and computes its width.
///
/// The `before` relation is transitive (death precedes definition precedes
/// death along any chain), so Dilworth via bipartite matching applies
/// directly.
pub fn disjoint_value_dag(
    ddg: &Ddg,
    t: RegType,
    killed: &KilledGraph,
    k: &KillingFunction,
) -> DisjointValueDag {
    let values = ddg.values(t);
    let mut before = Vec::new();
    for &u in &values {
        for &w in &values {
            if u != w && dv_before(ddg, killed, k, u, w) {
                before.push((u, w));
            }
        }
    }
    let rel = |a: NodeId, b: NodeId| before.binary_search(&(a, b)).is_ok();
    // `before` was produced in sorted (u, w) order already because `values`
    // is sorted; assert in debug builds.
    // lint:allow(D-04) sortedness follows from iterating `values` ascending; an O(n) release re-check per antichain would dominate small instances
    debug_assert!(before.windows(2).all(|w| w[0] <= w[1]));
    let res = max_antichain(&values, rel);
    DisjointValueDag {
        reg_type: t,
        values,
        before,
        width: res.width(),
        saturating: res.antichain,
    }
}

/// Register saturation under a fixed killing function, or `None` if `k` is
/// invalid (cyclic enforcement arcs).
pub fn rs_for_killing(
    ddg: &Ddg,
    t: RegType,
    pk: &PKill,
    k: &KillingFunction,
) -> Option<DisjointValueDag> {
    let killed = killed_graph(ddg, pk, k)?;
    Some(disjoint_value_dag(ddg, t, &killed, k))
}

/// A killing function that is *always* valid: pick for every value the
/// potential killer that comes last in one fixed topological order of `G`
/// (enforcement arcs then all point forward in that order, so no cycle can
/// appear). Used as the fallback of the greedy heuristic and as the root of
/// the exact enumeration.
pub fn topo_max_killing(ddg: &Ddg, t: RegType, pk: &PKill) -> KillingFunction {
    let order = topo::topo_sort(ddg.graph()).expect("DDG is acyclic");
    let mut pos = vec![0usize; ddg.num_ops()];
    for (i, n) in order.iter().enumerate() {
        pos[n.index()] = i;
    }
    KillingFunction {
        reg_type: t,
        killer: pk
            .iter()
            .map(|(u, ks)| (u, topo_max_choice(ks, &pos)))
            .collect(),
    }
}

/// Flat-array [`topo_max_killing`] against a precomputed topological
/// position table (the engine computes one order per DAG and shares it).
pub fn topo_max_killing_into(pk: &PKill, pos: &[usize], out: &mut FlatKilling) {
    out.reset(pos.len());
    for (u, ks) in pk.iter() {
        out.set(u, topo_max_choice(ks, pos));
    }
}

fn topo_max_choice(ks: &[NodeId], pos: &[usize]) -> NodeId {
    *ks.iter()
        .max_by_key(|k| pos[k.index()])
        .expect("pkill sets are nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};
    use crate::pkill::potential_killers;

    fn fanout_ddg() -> Ddg {
        // One value consumed by two independent stores.
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let s1 = b.op("s1", OpClass::Store, None);
        let s2 = b.op("s2", OpClass::Store, None);
        b.flow(v, s1, 1, RegType::INT);
        b.flow(v, s2, 1, RegType::INT);
        b.finish()
    }

    #[test]
    fn topo_max_killing_is_valid() {
        let d = fanout_ddg();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let k = topo_max_killing(&d, RegType::INT, &pk);
        assert!(k.respects(&pk));
        assert!(killed_graph(&d, &pk, &k).is_some());
    }

    #[test]
    fn killing_choice_adds_enforcement_arc() {
        let d = fanout_ddg();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let v = rs_graph::NodeId(0);
        let s1 = rs_graph::NodeId(1);
        let s2 = rs_graph::NodeId(2);
        assert_eq!(pk.of(v).len(), 2);
        let mut killer = BTreeMap::new();
        killer.insert(v, s1);
        let k = KillingFunction {
            reg_type: RegType::INT,
            killer,
        };
        let killed = killed_graph(&d, &pk, &k).unwrap();
        // an arc s2 -> s1 must now exist
        assert!(killed.graph.find_edge(s2, s1).is_some());
        // and lp reflects it
        assert!(killed.lp.reaches(s2, s1));
    }

    #[test]
    fn conflicting_killings_detected_as_cyclic() {
        // Two values u1, u2 both consumed by a and b. k(u1) = a forces
        // b -> a; k(u2) = b forces a -> b: cycle.
        let mut bld = DdgBuilder::new(Target::superscalar());
        let u1 = bld.op("u1", OpClass::IntAlu, Some(RegType::INT));
        let u2 = bld.op("u2", OpClass::IntAlu, Some(RegType::INT));
        let a = bld.op("a", OpClass::Store, None);
        let b = bld.op("b", OpClass::Store, None);
        bld.flow(u1, a, 1, RegType::INT);
        bld.flow(u1, b, 1, RegType::INT);
        bld.flow(u2, a, 1, RegType::INT);
        bld.flow(u2, b, 1, RegType::INT);
        let d = bld.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let mut killer = BTreeMap::new();
        killer.insert(u1, a);
        killer.insert(u2, b);
        let k = KillingFunction {
            reg_type: RegType::INT,
            killer,
        };
        assert!(
            killed_graph(&d, &pk, &k).is_none(),
            "cyclic killing must be rejected"
        );
        // but the consistent choice works
        let mut killer = BTreeMap::new();
        killer.insert(u1, a);
        killer.insert(u2, a);
        let k = KillingFunction {
            reg_type: RegType::INT,
            killer,
        };
        assert!(killed_graph(&d, &pk, &k).is_some());
    }

    #[test]
    fn dv_width_of_independent_values() {
        // Two independent values: width 2 under any killing function.
        let mut b = DdgBuilder::new(Target::superscalar());
        let x = b.op("x", OpClass::IntAlu, Some(RegType::INT));
        let y = b.op("y", OpClass::IntAlu, Some(RegType::INT));
        let _ = (x, y);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let k = topo_max_killing(&d, RegType::INT, &pk);
        let dv = rs_for_killing(&d, RegType::INT, &pk, &k).unwrap();
        assert_eq!(dv.width, 2);
        assert_eq!(dv.saturating.len(), 2);
    }

    #[test]
    fn dv_orders_chained_values() {
        // u -> c -> (c's value) : u dies at c, c's value defined at c.
        let mut b = DdgBuilder::new(Target::superscalar());
        let u = b.op("u", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        b.flow(u, c, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let k = topo_max_killing(&d, RegType::INT, &pk);
        let dv = rs_for_killing(&d, RegType::INT, &pk, &k).unwrap();
        // u < c in DV (u's killer is c itself; δr(c)=0 ≤ δw(c)=0)
        assert!(dv.before.contains(&(u, c)));
        assert_eq!(dv.width, 1);
    }

    #[test]
    fn respects_rejects_foreign_killer() {
        let d = fanout_ddg();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        let mut killer = BTreeMap::new();
        killer.insert(rs_graph::NodeId(0), d.bottom()); // ⊥ is not a consumer of v
        let k = KillingFunction {
            reg_type: RegType::INT,
            killer,
        };
        assert!(!k.respects(&pk));
    }
}
