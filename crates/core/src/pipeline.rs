//! The Figure-1 pre-scheduling pipeline: saturation computation followed by
//! reduction, per register type.
//!
//! ```text
//!        DAG ──► RS computation ──► (RS ≤ R ?) ──► untouched DAG
//!                                      │ no
//!                                      ▼
//!                              RS reduction (add arcs)
//!                                      │
//!                                      ▼
//!                              (modified) DAG ──► scheduler ──► allocator
//! ```
//!
//! The scheduler and allocator live downstream in `rs-sched`; this module
//! produces the register-constraint-free DAG they consume.

use crate::engine::RsEngine;
use crate::exact::ExactRs;
use crate::model::{Ddg, RegType};
use crate::reduce::{ReduceOutcome, Reducer};
use serde::Serialize;

/// Per-type register budget and analysis strategy.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Register budget per type (types absent from the list are unlimited).
    pub budgets: Vec<(RegType, usize)>,
    /// Verify the reduced saturation with the exact solver (slower; used by
    /// tests and experiments).
    pub verify_exact: bool,
}

/// Per-type outcome of the pipeline.
#[derive(Clone, Debug, Serialize)]
pub struct TypeReport {
    /// The register type (index form for serialization).
    pub reg_type: u8,
    /// Register budget applied.
    pub budget: usize,
    /// Saturation estimate before reduction.
    pub rs_before: usize,
    /// Saturation estimate after (== before when untouched).
    pub rs_after: usize,
    /// Number of serialization arcs added.
    pub arcs_added: usize,
    /// Critical path before.
    pub cp_before: i64,
    /// Critical path after.
    pub cp_after: i64,
    /// Whether the budget is met.
    pub fits: bool,
    /// Exact saturation after reduction, when verification was requested.
    pub verified_rs: Option<usize>,
}

/// Outcome of a full pipeline run.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineReport {
    /// One report per configured register type.
    pub types: Vec<TypeReport>,
}

impl PipelineReport {
    /// Whether every configured type fits its budget.
    pub fn all_fit(&self) -> bool {
        self.types.iter().all(|t| t.fits)
    }

    /// Total serialization arcs added across types.
    pub fn total_arcs_added(&self) -> usize {
        self.types.iter().map(|t| t.arcs_added).sum()
    }
}

impl Pipeline {
    /// A pipeline with one budget for every type present in the DDG.
    pub fn uniform(budget: usize) -> Self {
        Pipeline {
            budgets: vec![
                (RegType::INT, budget),
                (RegType::FLOAT, budget),
                (RegType::BRANCH, budget),
            ],
            verify_exact: false,
        }
    }

    /// Runs saturation analysis + reduction on every configured type,
    /// mutating `ddg` in place.
    ///
    /// Thin wrapper: execution is delegated to a fresh [`RsEngine`] —
    /// [`RsEngine::run_pipeline`] is the single execution path. Corpus-scale
    /// drivers keep one engine per worker and route through it directly to
    /// reuse its scratch across DAGs.
    pub fn run(&self, ddg: &mut Ddg) -> PipelineReport {
        RsEngine::new().run_pipeline(self, ddg)
    }

    /// Runs the pipeline through a batch [`RsEngine`]: identical report
    /// (the engine analysis matches [`crate::heuristic::GreedyK`] exactly),
    /// allocation-reusing execution. This is the engine hook behind
    /// [`RsEngine::run_pipeline`].
    pub(crate) fn run_with(&self, engine: &mut RsEngine, ddg: &mut Ddg) -> PipelineReport {
        let mut types = Vec::new();
        for &(t, budget) in &self.budgets {
            if ddg.values(t).is_empty() {
                continue;
            }
            let cp_before = ddg.critical_path();
            let before = engine.analyze(ddg, t);
            let reducer = Reducer {
                verify_exact: self.verify_exact,
                ..Reducer::new()
            };
            let outcome = engine.reduce_with(&reducer, ddg, t, budget);
            let (rs_after, arcs_added, fits) = match &outcome {
                ReduceOutcome::AlreadyFits { rs } => (*rs, 0, true),
                ReduceOutcome::Reduced {
                    rs_after,
                    added_arcs,
                    ..
                } => (*rs_after, added_arcs.len(), true),
                ReduceOutcome::Failed {
                    best_rs,
                    added_arcs,
                    ..
                } => (*best_rs, added_arcs.len(), false),
            };
            let verified_rs = self
                .verify_exact
                .then(|| ExactRs::new().saturation(ddg, t).saturation);
            types.push(TypeReport {
                reg_type: t.0,
                budget,
                rs_before: before.saturation,
                rs_after,
                arcs_added,
                cp_before,
                cp_after: ddg.critical_path(),
                fits,
                verified_rs,
            });
        }
        PipelineReport { types }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};

    fn mixed_ddg() -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        // four independent float chains + two independent int chains
        for i in 0..4 {
            let v = b.op(format!("f{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("fs{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        for i in 0..2 {
            let v = b.op(format!("i{i}"), OpClass::IntAlu, Some(RegType::INT));
            let s = b.op(format!("is{i}"), OpClass::Store, None);
            b.flow(v, s, 1, RegType::INT);
        }
        b.finish()
    }

    #[test]
    fn pipeline_reduces_only_overflowing_types() {
        let mut d = mixed_ddg();
        let report = Pipeline {
            budgets: vec![(RegType::FLOAT, 2), (RegType::INT, 8)],
            verify_exact: true,
        }
        .run(&mut d);
        assert!(report.all_fit());
        let float = report.types.iter().find(|t| t.reg_type == 1).unwrap();
        assert_eq!(float.rs_before, 4);
        assert!(float.rs_after <= 2);
        assert!(float.arcs_added > 0);
        assert_eq!(
            float.verified_rs.unwrap().min(2),
            float.verified_rs.unwrap()
        );
        let int = report.types.iter().find(|t| t.reg_type == 0).unwrap();
        assert_eq!(int.arcs_added, 0, "int fits, must be untouched");
        assert!(report.total_arcs_added() >= float.arcs_added);
    }

    #[test]
    fn uniform_budget_covers_all_types() {
        let mut d = mixed_ddg();
        let report = Pipeline::uniform(8).run(&mut d);
        assert!(report.all_fit());
        assert_eq!(report.total_arcs_added(), 0);
        assert_eq!(report.types.len(), 2); // INT and FLOAT present
    }

    #[test]
    fn failing_budget_reported() {
        // two loads into an add cannot fit in one register
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        b.flow(l1, add, 4, RegType::FLOAT);
        b.flow(l2, add, 4, RegType::FLOAT);
        let mut d = b.finish();
        let report = Pipeline {
            budgets: vec![(RegType::FLOAT, 1)],
            verify_exact: false,
        }
        .run(&mut d);
        assert!(!report.all_fit());
    }
}
