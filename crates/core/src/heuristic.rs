//! The Greedy-k register-saturation heuristic (reimplementation of the
//! CC'01 estimator \[14\] whose near-optimality this paper demonstrates).
//!
//! Computing `RS_t(G)` is NP-complete; fixing a killing function makes it
//! polynomial ([`crate::killing`]). Greedy-k therefore *chooses* a killing
//! function heuristically, aiming for the widest disjoint-value DAG:
//!
//! - **Coverage:** killers that can kill many values are preferred — values
//!   killed at the same point die together, which lets them be
//!   simultaneously alive just before;
//! - **Few descendants:** killers with few value descendants induce fewer
//!   `DV_k` arcs, keeping antichains wide;
//! - **Validity:** chosen killings must not create cyclic enforcement arcs;
//!   conflicts are repaired against a fixed topological order (choosing the
//!   topologically last potential killer is always valid).
//!
//! The published description of Greedy-k leaves tie-breaking unspecified;
//! this implementation evaluates a small portfolio of greedy orders and
//! keeps the best (every candidate is a *valid* killing function, so the
//! result is always an achievable lower bound `RS* ≤ RS`). The reproduced
//! experimental property (Section 5: error ≤ 1 register, rarely) is checked
//! in the T1 experiment.

use crate::killing::{
    killed_graph, rs_for_killing, topo_max_killing, FlatKilling, KillingFunction,
};
use crate::model::{Ddg, RegType};
use crate::pkill::{potential_killers, PKill};
use rs_graph::closure::TransitiveClosure;
use rs_graph::paths::LongestPaths;
use rs_graph::{topo, NodeId};
use std::collections::BTreeMap;

/// Result of a saturation analysis.
#[derive(Clone, Debug)]
pub struct RsAnalysis {
    /// The register type analysed.
    pub reg_type: RegType,
    /// The estimated register saturation `RS*` (achievable: some valid
    /// schedule needs exactly this many registers).
    pub saturation: usize,
    /// A witness set of values that can be simultaneously alive.
    pub saturating_values: Vec<NodeId>,
    /// The killing function realizing the estimate.
    pub killing: KillingFunction,
    /// True when the estimate is provably optimal without search (single
    /// killing function, or the antichain already spans all values).
    pub provably_optimal: bool,
}

/// The Greedy-k heuristic.
///
/// ```
/// use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
/// use rs_core::heuristic::GreedyK;
///
/// // two independent values: both can be alive at once
/// let mut b = DdgBuilder::new(Target::superscalar());
/// b.op("x", OpClass::IntAlu, Some(RegType::INT));
/// b.op("y", OpClass::IntAlu, Some(RegType::INT));
/// let ddg = b.finish();
///
/// let rs = GreedyK::new().saturation(&ddg, RegType::INT);
/// assert_eq!(rs.saturation, 2);
/// assert!(rs.provably_optimal);
/// ```
#[derive(Clone, Debug)]
pub struct GreedyK {
    /// Maximum cycle-repair iterations before falling back to the
    /// always-valid topological-max killing function.
    pub max_repairs: usize,
    /// Hill-climbing passes over the killer choices after the greedy
    /// construction: each pass tries every alternative killer of every
    /// ambiguous value and keeps switches that widen the antichain.
    /// `0` disables refinement.
    pub refine_passes: usize,
}

impl Default for GreedyK {
    fn default() -> Self {
        GreedyK {
            max_repairs: 32,
            refine_passes: 3,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Strategy {
    /// coverage desc, then value-descendant count asc.
    CoverageFirst,
    /// value-descendant count asc, then coverage desc.
    DescendantsFirst,
    /// topological-max (always valid; also the repair fallback).
    TopoMax,
}

impl GreedyK {
    /// Creates the heuristic with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the register saturation estimate `RS*_t(G)`.
    pub fn saturation(&self, ddg: &Ddg, t: RegType) -> RsAnalysis {
        let values = ddg.values(t);
        if values.is_empty() {
            return RsAnalysis {
                reg_type: t,
                saturation: 0,
                saturating_values: Vec::new(),
                killing: KillingFunction {
                    reg_type: t,
                    killer: BTreeMap::new(),
                },
                provably_optimal: true,
            };
        }
        let lp = LongestPaths::new(ddg.graph());
        let pk = potential_killers(ddg, t, &lp);
        let unique_killing = pk.killing_function_count() == 1;

        let mut best: Option<RsAnalysis> = None;
        for strategy in [
            Strategy::CoverageFirst,
            Strategy::DescendantsFirst,
            Strategy::TopoMax,
        ] {
            let k = self.build_killing(ddg, t, &pk, strategy);
            let Some(dv) = rs_for_killing(ddg, t, &pk, &k) else {
                continue; // repair failed (cannot happen for TopoMax)
            };
            let cand = RsAnalysis {
                reg_type: t,
                saturation: dv.width,
                saturating_values: dv.saturating,
                killing: k,
                provably_optimal: unique_killing || dv.width == values.len(),
            };
            let better = best.as_ref().is_none_or(|b| cand.saturation > b.saturation);
            if better {
                best = Some(cand);
            }
            if unique_killing {
                break;
            }
        }
        let mut best = best.expect("TopoMax strategy always yields a valid killing function");
        if !unique_killing && best.saturation < values.len() {
            self.refine(ddg, t, &pk, &mut best, values.len());
        }
        best
    }

    /// Hill-climbing over killer choices: try every alternative killer of
    /// every ambiguous value, adopt switches that widen the antichain.
    fn refine(&self, ddg: &Ddg, t: RegType, pk: &PKill, best: &mut RsAnalysis, max_width: usize) {
        let ambiguous: Vec<(NodeId, &[NodeId])> =
            pk.iter().filter(|(_, ks)| ks.len() > 1).collect();
        for _pass in 0..self.refine_passes {
            let mut improved = false;
            for &(u, killers) in &ambiguous {
                let current = best.killing.of(u);
                for &alt in killers {
                    if alt == current || best.saturation == max_width {
                        continue;
                    }
                    let mut trial = best.killing.clone();
                    trial.killer.insert(u, alt);
                    if let Some(dv) = rs_for_killing(ddg, t, pk, &trial) {
                        if dv.width > best.saturation {
                            best.saturation = dv.width;
                            best.saturating_values = dv.saturating;
                            best.killing = trial;
                            best.provably_optimal = dv.width == max_width;
                            improved = true;
                            break; // re-read `current` for this value
                        }
                    }
                }
            }
            if !improved || best.saturation == max_width {
                break;
            }
        }
    }

    /// Builds a killing function by the given greedy order, repairing
    /// enforcement-arc cycles against the topological order.
    fn build_killing(
        &self,
        ddg: &Ddg,
        t: RegType,
        pk: &PKill,
        strategy: Strategy,
    ) -> KillingFunction {
        if matches!(strategy, Strategy::TopoMax) {
            return topo_max_killing(ddg, t, pk);
        }

        // Killer statistics, in flat arrays indexed by (dense) node id: the
        // scores are consulted per (value, candidate) pair, and the map
        // variants dominated the one-shot profile. Iteration stays in
        // ascending value order, so choices are as deterministic as before.
        let tc = TransitiveClosure::new(ddg.graph());
        let values = ddg.values(t);
        let is_value: Vec<bool> = {
            let mut v = vec![false; ddg.num_ops()];
            for &x in &values {
                v[x.index()] = true;
            }
            v
        };
        let mut coverage = vec![0u32; ddg.num_ops()];
        for (_, ks) in pk.iter() {
            for &k in ks {
                coverage[k.index()] += 1;
            }
        }
        let value_descendants = |killer: NodeId| -> usize {
            tc.descendants(killer)
                .iter()
                .filter(|&i| is_value[i])
                .count()
        };

        let order = topo::topo_sort(ddg.graph()).expect("DDG is acyclic");
        let mut pos = vec![0usize; ddg.num_ops()];
        for (i, n) in order.iter().enumerate() {
            pos[n.index()] = i;
        }

        let score = |k: NodeId| -> (i64, i64, i64) {
            let cov = coverage[k.index()] as i64;
            let desc = value_descendants(k) as i64;
            match strategy {
                Strategy::CoverageFirst => (-cov, desc, -(pos[k.index()] as i64)),
                Strategy::DescendantsFirst => (desc, -cov, -(pos[k.index()] as i64)),
                Strategy::TopoMax => unreachable!(),
            }
        };

        let mut killer = FlatKilling::default();
        killer.reset(ddg.num_ops());
        for (u, ks) in pk.iter() {
            killer.set(
                u,
                *ks.iter()
                    .min_by_key(|&&k| score(k))
                    .expect("pkill sets are nonempty"),
            );
        }

        // Cycle repair: re-point conflicting values at their topological-max
        // killer (arcs toward the topo-max killer always go forward).
        let fallback = topo_max_killing(ddg, t, pk);
        for _ in 0..self.max_repairs {
            let kf = killer.to_killing_function(t, pk);
            if killed_graph(ddg, pk, &kf).is_some() {
                return kf;
            }
            // Find one value whose greedy choice differs from the fallback
            // and whose enforcement could participate in a cycle; flip it.
            let mut flipped = false;
            for (u, ks) in pk.iter() {
                if ks.len() > 1 && killer.of(u) != fallback.of(u) {
                    killer.set(u, fallback.of(u));
                    flipped = true;
                    break;
                }
            }
            if !flipped {
                break;
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};

    #[test]
    fn empty_type_has_zero_saturation() {
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op("st", OpClass::Store, None);
        let d = b.finish();
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT);
        assert_eq!(rs.saturation, 0);
        assert!(rs.provably_optimal);
    }

    #[test]
    fn independent_values_all_saturate() {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..5 {
            b.op(format!("v{i}"), OpClass::IntAlu, Some(RegType::INT));
        }
        let d = b.finish();
        let rs = GreedyK::new().saturation(&d, RegType::INT);
        assert_eq!(rs.saturation, 5);
        assert!(rs.provably_optimal);
        assert_eq!(rs.saturating_values.len(), 5);
    }

    #[test]
    fn chain_saturates_at_two() {
        // v0 -> v1 -> v2 -> v3 (each consumes the previous): at any moment at
        // most two of these int values are needed... actually exactly 2: the
        // consumed one stays alive until its reader issues, at which point
        // the reader's own value is born (half-open: they touch). Width 1?
        // Lifetimes: (σ_i, σ_{i+1}]. Consecutive touch -> no interference;
        // so the chain needs exactly 1 register at saturation... but the
        // LAST value lives until ⊥ alongside nothing else. Saturation = 1.
        let mut b = DdgBuilder::new(Target::superscalar());
        let mut prev = b.op("v0", OpClass::IntAlu, Some(RegType::INT));
        for i in 1..4 {
            let n = b.op(format!("v{i}"), OpClass::IntAlu, Some(RegType::INT));
            b.flow(prev, n, 1, RegType::INT);
            prev = n;
        }
        let d = b.finish();
        let rs = GreedyK::new().saturation(&d, RegType::INT);
        assert_eq!(rs.saturation, 1);
    }

    #[test]
    fn figure2_dag_saturates_at_four() {
        // The paper's Figure 2(a): a -> b, c, d chain structure where
        // bold values {a, b, c, d} can all be alive simultaneously.
        // Modelled as: a feeds b, c, d (fan-out), plus the latency-17 edge
        // making a's lifetime long.
        let mut bld = DdgBuilder::new(Target::superscalar());
        let a = bld.op("a", OpClass::Load, Some(RegType::FLOAT));
        let b = bld.op("b", OpClass::FloatAlu, Some(RegType::FLOAT));
        let c = bld.op("c", OpClass::FloatAlu, Some(RegType::FLOAT));
        let d = bld.op("d", OpClass::FloatAlu, Some(RegType::FLOAT));
        let sink = bld.op("sink", OpClass::Store, None);
        bld.flow(a, sink, 17, RegType::FLOAT);
        bld.flow(b, sink, 1, RegType::FLOAT);
        bld.flow(c, sink, 1, RegType::FLOAT);
        bld.flow(d, sink, 1, RegType::FLOAT);
        let ddg = bld.finish();
        let rs = GreedyK::new().saturation(&ddg, RegType::FLOAT);
        assert_eq!(rs.saturation, 4);
    }

    #[test]
    fn estimate_is_achievable() {
        // The witness killing function must be valid and its width must be
        // realizable by an actual schedule's register need.
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let l3 = b.op("l3", OpClass::Load, Some(RegType::FLOAT));
        let m1 = b.op("m1", OpClass::FloatMul, Some(RegType::FLOAT));
        let m2 = b.op("m2", OpClass::FloatMul, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(l1, m1, 4, RegType::FLOAT);
        b.flow(l2, m1, 4, RegType::FLOAT);
        b.flow(l2, m2, 4, RegType::FLOAT);
        b.flow(l3, m2, 4, RegType::FLOAT);
        b.flow(m1, st, 4, RegType::FLOAT);
        b.flow(m2, st, 4, RegType::FLOAT);
        let d = b.finish();
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT);
        // all three loads live together; m1 can still be alive while l3 is:
        // ASAP already needs 3+ registers.
        assert!(rs.saturation >= 3, "got {}", rs.saturation);
        // achievability: the ASAP register need never exceeds RS*... only
        // the exact RS bounds all schedules; here we check the weaker sanity
        // RN(asap) <= |values|.
        let asap = crate::lifetime::asap_schedule(&d);
        let rn = crate::lifetime::register_need(&d, RegType::FLOAT, &asap);
        assert!(rn <= d.values(RegType::FLOAT).len());
    }

    #[test]
    fn multiple_types_analysed_independently() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let i1 = b.op("i1", OpClass::IntAlu, Some(RegType::INT));
        let i2 = b.op("i2", OpClass::IntAlu, Some(RegType::INT));
        let f1 = b.op("f1", OpClass::FloatAlu, Some(RegType::FLOAT));
        let _ = (i1, i2, f1);
        let d = b.finish();
        let g = GreedyK::new();
        assert_eq!(g.saturation(&d, RegType::INT).saturation, 2);
        assert_eq!(g.saturation(&d, RegType::FLOAT).saturation, 1);
    }
}
