//! Potential-killing analysis (from Touati's CC'01 framework \[14\]).
//!
//! A consumer `v ∈ Cons(u^t)` is a **potential killer** of `u^t` if some
//! valid schedule makes `v` the last reader. Consumer `v` can never be last
//! if another consumer `v'` always reads at least as late, which is the case
//! iff there is a path `v ⇝ v'` with
//! `lp(v, v') ≥ δr(v) − δr(v')` (then `σ(v') + δr(v') ≥ σ(v) + δr(v)` in
//! every schedule). `pkill(u^t)` is the set of maximal consumers under this
//! *always-reads-before* preorder.
//!
//! The same machinery yields the Section-3 intLP optimization predicate
//! [`never_simultaneously_alive`]: two values whose lifetimes can never
//! interfere need no interference binary.

use crate::model::{Ddg, RegType};
use rs_graph::paths::LongestPaths;
use rs_graph::NodeId;

/// Sentinel for "this node is not a value of the analysed type".
const NO_SLOT: u32 = u32::MAX;

/// Potential-killing structure of one register type.
///
/// Stored flat (CSR over the ascending value list plus a dense node → slot
/// table) rather than as a `BTreeMap`: the saturation engine consults it in
/// its innermost loops, and the flat layout makes rebuilds allocation-free
/// in the steady state ([`potential_killers_into`]). Iteration order is the
/// ascending node order the old map-based layout had.
#[derive(Clone, Debug, Default)]
pub struct PKill {
    /// The register type analysed.
    pub reg_type: RegType,
    /// The values, ascending.
    values: Vec<NodeId>,
    /// CSR offsets into `killers`, one per value plus the terminator.
    offsets: Vec<u32>,
    /// Concatenated `pkill(u)` slices, each sorted by node id.
    killers: Vec<NodeId>,
    /// Dense node index → slot in `values` (or [`NO_SLOT`]).
    slot: Vec<u32>,
    /// Consumer scratch for construction.
    cons: Vec<NodeId>,
}

impl PKill {
    /// The values of the analysed type, ascending.
    pub fn values(&self) -> &[NodeId] {
        &self.values
    }

    /// Number of values covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value is covered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Potential killers of `u`. Panics if `u` is not a value of this type.
    pub fn of(&self, u: NodeId) -> &[NodeId] {
        self.get(u).expect("not a value of the analysed type")
    }

    /// Potential killers of `u`, or `None` if `u` is not a covered value.
    pub fn get(&self, u: NodeId) -> Option<&[NodeId]> {
        let s = *self.slot.get(u.index())?;
        if s == NO_SLOT {
            return None;
        }
        let (lo, hi) = (self.offsets[s as usize], self.offsets[s as usize + 1]);
        Some(&self.killers[lo as usize..hi as usize])
    }

    /// Iterates `(value, pkill(value))` in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[NodeId])> + '_ {
        self.values.iter().enumerate().map(|(i, &u)| {
            let (lo, hi) = (self.offsets[i], self.offsets[i + 1]);
            (u, &self.killers[lo as usize..hi as usize])
        })
    }

    /// Values with more than one potential killer — the decision points of
    /// the exact enumeration.
    pub fn ambiguous_values(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, ks)| ks.len() > 1)
            .map(|(u, _)| u)
            .collect()
    }

    /// Number of killing functions (product of `|pkill(u)|`), saturating.
    pub fn killing_function_count(&self) -> u128 {
        self.iter()
            .map(|(_, ks)| ks.len() as u128)
            .fold(1u128, |a, b| a.saturating_mul(b))
    }
}

/// `v` always reads no later than `v'` (the ⪯ preorder on consumers):
/// there is a path `v ⇝ v'` with `lp(v, v') ≥ δr(v) − δr(v')`.
pub fn always_reads_before(ddg: &Ddg, lp: &LongestPaths, v: NodeId, v_prime: NodeId) -> bool {
    if v == v_prime {
        return false;
    }
    match lp.lp(v, v_prime) {
        Some(d) => d >= ddg.delta_r(v) - ddg.delta_r(v_prime),
        None => false,
    }
}

/// Computes the potential-killing structure for type `t`.
pub fn potential_killers(ddg: &Ddg, t: RegType, lp: &LongestPaths) -> PKill {
    let mut pk = PKill::default();
    potential_killers_into(ddg, t, lp, &mut pk);
    pk
}

/// Allocation-reusing [`potential_killers`]: rebuilds `out` in place. In the
/// steady state of a batch run no buffer reallocates.
pub fn potential_killers_into(ddg: &Ddg, t: RegType, lp: &LongestPaths, out: &mut PKill) {
    out.reg_type = t;
    ddg.values_into(t, &mut out.values);
    out.offsets.clear();
    out.offsets.push(0);
    out.killers.clear();
    out.slot.clear();
    out.slot.resize(ddg.num_ops(), NO_SLOT);
    // Split borrows: the construction reads `values`/`cons` while pushing
    // into `killers`/`offsets`/`slot`.
    let PKill {
        values,
        offsets,
        killers,
        slot,
        cons,
        ..
    } = out;
    for (i, &u) in values.iter().enumerate() {
        slot[u.index()] = i as u32;
        ddg.consumers_into(u, t, cons);
        killers.extend(cons.iter().copied().filter(|&v| {
            !cons
                .iter()
                .any(|&v2| v2 != v && always_reads_before(ddg, lp, v, v2))
        }));
        // lint:allow(D-04) the ⊥-closure in Ddg::from_builder guarantees every value a consumer, hence a killer
        debug_assert!(
            killers.len() > offsets[i] as usize,
            "every value has at least one potential killer after ⊥-closure"
        );
        offsets.push(killers.len() as u32);
    }
}

/// The Section-3 optimization: values `u^t` and `v^t` can **never** be
/// simultaneously alive iff one is always defined after the other's death:
///
/// ```text
///   ∀v' ∈ Cons(v^t): lp(v', u) ≥ δr(v') − δw(u)
/// ∨ ∀u' ∈ Cons(u^t): lp(u', v) ≥ δr(u') − δw(v)
/// ```
pub fn never_simultaneously_alive(
    ddg: &Ddg,
    t: RegType,
    lp: &LongestPaths,
    u: NodeId,
    v: NodeId,
) -> bool {
    let after = |x: NodeId, y: NodeId| {
        // every consumer of x's value reads before y's definition
        ddg.consumers(x, t).iter().all(|&c| {
            if c == y {
                // y itself consuming x: y's definition is at σ(y)+δw(y) and
                // the read at σ(y)+δr(y); x dies no later than y defines iff
                // δr(c) ≤ δw(y).
                ddg.delta_r(c) <= ddg.delta_w(y)
            } else {
                matches!(lp.lp(c, y), Some(d) if d >= ddg.delta_r(c) - ddg.delta_w(y))
            }
        })
    };
    after(v, u) || after(u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};

    /// v -> {c1 -> c2} : c1 always reads before c2, so pkill(v) = {c2}.
    #[test]
    fn chained_consumers_leave_one_killer() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let c1 = b.op("c1", OpClass::IntAlu, Some(RegType::INT));
        let c2 = b.op("c2", OpClass::Store, None);
        b.flow(v, c1, 1, RegType::INT);
        b.flow(v, c2, 1, RegType::INT);
        b.flow(c1, c2, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert_eq!(pk.of(v), &[c2]);
        assert!(pk.ambiguous_values().is_empty() || !pk.ambiguous_values().contains(&v));
    }

    /// Two incomparable consumers are both potential killers.
    #[test]
    fn parallel_consumers_both_kill() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let c1 = b.op("c1", OpClass::Store, None);
        let c2 = b.op("c2", OpClass::Store, None);
        b.flow(v, c1, 1, RegType::INT);
        b.flow(v, c2, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert_eq!(pk.of(v).len(), 2);
        assert_eq!(pk.ambiguous_values(), vec![v]);
        assert_eq!(pk.killing_function_count(), 2);
    }

    /// An exit value is killed only by ⊥.
    #[test]
    fn exit_value_killed_by_bottom() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert_eq!(pk.of(v), &[d.bottom()]);
    }

    /// A consumer also flowing into ⊥-reachable paths: the consumer chained
    /// before ⊥ is dominated when a serial path with sufficient latency
    /// exists.
    #[test]
    fn bottom_dominates_interior_consumer() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        b.flow(v, c, 1, RegType::INT);
        let d = b.finish();
        // v's only consumer is c; c reaches ⊥, but ⊥ doesn't consume v, so
        // pkill(v) = {c}.
        let lp = LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert_eq!(pk.of(v), &[c]);
    }

    #[test]
    fn never_alive_for_chained_values() {
        // u -> c -> v: u is dead (read by c) before v is defined
        let mut b = DdgBuilder::new(Target::superscalar());
        let u = b.op("u", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        b.flow(u, c, 1, RegType::INT);
        b.flow(c, v, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        assert!(never_simultaneously_alive(&d, RegType::INT, &lp, u, v));
        // u and c can never be alive together either: u's only reader IS c,
        // so u dies exactly as c's value is born (half-open intervals touch)
        assert!(never_simultaneously_alive(&d, RegType::INT, &lp, u, c));
    }

    #[test]
    fn value_with_late_reader_interferes_with_consumer_value() {
        // u read by c AND by a later store s: u can outlive c's definition.
        let mut b = DdgBuilder::new(Target::superscalar());
        let u = b.op("u", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        let s = b.op("s", OpClass::Store, None);
        b.flow(u, c, 1, RegType::INT);
        b.flow(u, s, 1, RegType::INT);
        b.flow(c, s, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        assert!(!never_simultaneously_alive(&d, RegType::INT, &lp, u, c));
    }

    #[test]
    fn direct_consumer_value_not_simultaneous_superscalar() {
        // u -> v where v produces its own value: with δr = δw = 0 the
        // half-open intervals touch but do not interfere.
        let mut b = DdgBuilder::new(Target::superscalar());
        let u = b.op("u", OpClass::IntAlu, Some(RegType::INT));
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        b.flow(u, v, 1, RegType::INT);
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        // u's only consumer is v itself: δr(v)=0 ≤ δw(v)=0
        assert!(never_simultaneously_alive(&d, RegType::INT, &lp, u, v));
    }

    #[test]
    fn independent_values_can_be_alive() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let u = b.op("u", OpClass::IntAlu, Some(RegType::INT));
        let v = b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let _ = u;
        let _ = v;
        let d = b.finish();
        let lp = LongestPaths::new(d.graph());
        assert!(!never_simultaneously_alive(&d, RegType::INT, &lp, u, v));
    }
}
