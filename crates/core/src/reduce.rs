//! Heuristic register-saturation reduction (the CC'01 value-serialization
//! algorithm \[14\] whose near-optimality Section 5 of the paper measures).
//!
//! While `RS*(G) > R`, pick two values `u, v` from the current saturating
//! antichain and *serialize* `u`'s lifetime before `v`'s: add arcs from
//! every reader of `u` (except `v`) to `v`, with latency
//! `δr(reader) − δw(v)`, so that `u` is dead before `v` is defined in every
//! schedule. Candidates are ranked by the projected critical-path increase
//! (the paper's requirement that added arcs "save ILP as much as possible by
//! taking care of the critical path"); ties prefer fewer arcs.
//!
//! Failure (no valid candidate while `RS* > R`) means spilling is
//! unavoidable at this budget — the same terminal case as Section 4's
//! exact method.

use crate::heuristic::GreedyK;
use crate::model::{Ddg, RegType};
use rs_graph::paths::{asap, longest_to, LongestPaths};
use rs_graph::NodeId;

/// The value-serialization reducer.
///
/// ```
/// use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
/// use rs_core::reduce::Reducer;
///
/// // two independent def-use chains: RS = 2, reducible to 1
/// let mut b = DdgBuilder::new(Target::superscalar());
/// for i in 0..2 {
///     let v = b.op(format!("v{i}"), OpClass::IntAlu, Some(RegType::INT));
///     let s = b.op(format!("s{i}"), OpClass::Store, None);
///     b.flow(v, s, 1, RegType::INT);
/// }
/// let mut ddg = b.finish();
///
/// let outcome = Reducer::new().reduce(&mut ddg, RegType::INT, 1);
/// assert!(outcome.fits());
/// assert!(!outcome.added_arcs().is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Reducer {
    /// The saturation estimator used between steps.
    pub heuristic: GreedyK,
    /// Hard bound on serialization steps (0 = `4·n²`).
    pub max_steps: usize,
    /// Confirm every "fits" verdict with the exact solver and keep reducing
    /// on its witness antichain when the heuristic under-estimated. With
    /// this on, a [`ReduceOutcome::Reduced`] result guarantees the *exact*
    /// saturation meets the budget (as long as the exact search stayed
    /// within its node budget). Costs an exact solve per step.
    pub verify_exact: bool,
}

/// Result of a heuristic reduction.
#[derive(Clone, Debug)]
pub enum ReduceOutcome {
    /// `RS ≤ R` already — the DDG is untouched (the key advantage over
    /// minimization approaches, Section 6).
    AlreadyFits {
        /// The measured saturation.
        rs: usize,
    },
    /// Saturation successfully brought to `rs_after ≤ R`.
    Reduced {
        /// Saturation before reduction.
        rs_before: usize,
        /// Saturation after reduction (`≤ R`).
        rs_after: usize,
        /// Critical path before.
        cp_before: i64,
        /// Critical path after (the ILP loss is `cp_after − cp_before`).
        cp_after: i64,
        /// Serialization arcs added (src, dst, latency).
        added_arcs: Vec<(NodeId, NodeId, i64)>,
        /// Serialization steps taken.
        steps: usize,
    },
    /// No further valid serialization exists while `RS > R`.
    Failed {
        /// Saturation before reduction.
        rs_before: usize,
        /// Best saturation reached.
        best_rs: usize,
        /// Critical path after the partial reduction.
        cp_after: i64,
        /// Arcs added by the partial reduction.
        added_arcs: Vec<(NodeId, NodeId, i64)>,
    },
}

impl ReduceOutcome {
    /// Whether the budget was met.
    pub fn fits(&self) -> bool {
        !matches!(self, ReduceOutcome::Failed { .. })
    }

    /// The ILP loss (critical-path increase), 0 when untouched.
    pub fn ilp_loss(&self) -> i64 {
        match self {
            ReduceOutcome::AlreadyFits { .. } => 0,
            ReduceOutcome::Reduced {
                cp_before,
                cp_after,
                ..
            } => cp_after - cp_before,
            ReduceOutcome::Failed { .. } => 0,
        }
    }

    /// Arcs added by the reduction.
    pub fn added_arcs(&self) -> &[(NodeId, NodeId, i64)] {
        match self {
            ReduceOutcome::AlreadyFits { .. } => &[],
            ReduceOutcome::Reduced { added_arcs, .. } => added_arcs,
            ReduceOutcome::Failed { added_arcs, .. } => added_arcs,
        }
    }
}

/// One candidate serialization `u ≺ v`.
#[derive(Clone, Debug)]
struct Candidate {
    u: NodeId,
    v: NodeId,
    arcs: Vec<(NodeId, NodeId, i64)>,
    /// Projected critical-path increase.
    cost: i64,
}

/// A saturation estimator: returns the estimate and its witness antichain,
/// like [`GreedyK::saturation`]. The batch engine supplies a scratch-backed
/// one to [`Reducer::reduce_with`].
pub type RsEstimator<'a> = dyn FnMut(&Ddg, RegType) -> (usize, Vec<NodeId>) + 'a;

impl Reducer {
    /// Creates the reducer with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures the saturation: the supplied estimate, upgraded to the
    /// exact value (with its witness antichain) in `verify_exact` mode when
    /// the estimate already fits.
    fn measure(
        &self,
        ddg: &Ddg,
        t: RegType,
        r: usize,
        estimate: &mut RsEstimator<'_>,
    ) -> (usize, Vec<NodeId>) {
        let est = estimate(ddg, t);
        if self.verify_exact && est.0 <= r {
            let exact = crate::exact::ExactRs::new().saturation(ddg, t);
            if exact.saturation > est.0 {
                return (exact.saturation, exact.saturating_values);
            }
        }
        est
    }

    /// Reduces `RS_t(ddg)` below `r` by adding serialization arcs in place.
    ///
    /// Thin wrapper: execution is delegated to a fresh
    /// [`crate::engine::RsEngine`] carrying this reducer's settings —
    /// [`crate::engine::RsEngine::reduce_with`] is the single execution
    /// path. Keep an engine alive across calls to reuse its scratch.
    pub fn reduce(&self, ddg: &mut Ddg, t: RegType, r: usize) -> ReduceOutcome {
        crate::engine::RsEngine::with_params(self.heuristic.clone()).reduce_with(self, ddg, t, r)
    }

    /// [`Reducer::reduce`] with a caller-supplied saturation estimator —
    /// the hook [`crate::engine::RsEngine`] uses to route every per-step
    /// measurement through its scratch. The estimator must behave like
    /// [`GreedyK::saturation`] (return the estimate and its witness
    /// antichain); `verify_exact` upgrades still apply on top of it.
    pub(crate) fn reduce_with(
        &self,
        ddg: &mut Ddg,
        t: RegType,
        r: usize,
        estimate: &mut RsEstimator<'_>,
        cancel: &rs_lp::Cancel,
    ) -> ReduceOutcome {
        assert!(r >= 1, "register budget must be positive");
        let (rs_first, sat_first) = self.measure(ddg, t, r, estimate);
        if rs_first <= r {
            return ReduceOutcome::AlreadyFits { rs: rs_first };
        }
        let rs_before = rs_first;
        let cp_before = ddg.critical_path();
        let max_steps = if self.max_steps == 0 {
            4 * ddg.num_ops() * ddg.num_ops()
        } else {
            self.max_steps
        };

        let mut added: Vec<(NodeId, NodeId, i64)> = Vec::new();
        let mut best_rs = rs_before;
        let mut current = (rs_first, sat_first);
        for step in 0..max_steps {
            if current.0 <= r {
                return ReduceOutcome::Reduced {
                    rs_before,
                    rs_after: current.0,
                    cp_before,
                    cp_after: ddg.critical_path(),
                    added_arcs: added,
                    steps: step,
                };
            }
            // Cooperative cancellation between steps: the arcs added so far
            // stay in the DDG (each one is a valid serialization), so the
            // partial progress is reported as `Failed` — a typed, truthful
            // "did not reach r" with everything achieved up to the cut.
            if cancel.cancelled() {
                return ReduceOutcome::Failed {
                    rs_before,
                    best_rs,
                    cp_after: ddg.critical_path(),
                    added_arcs: added,
                };
            }
            let Some(best) = self.best_candidate(ddg, t, &current.1) else {
                return ReduceOutcome::Failed {
                    rs_before,
                    best_rs,
                    cp_after: ddg.critical_path(),
                    added_arcs: added,
                };
            };
            for &(s, d, lat) in &best.arcs {
                ddg.add_serial(s, d, lat);
                added.push((s, d, lat));
            }
            // lint:allow(D-04) candidate arc sets were acyclicity-checked when scored; this re-asserts after re-application
            debug_assert!(ddg.is_acyclic(), "serialization must keep the DDG acyclic");
            current = self.measure(ddg, t, r, estimate);
            best_rs = best_rs.min(current.0);
        }
        ReduceOutcome::Failed {
            rs_before,
            best_rs,
            cp_after: ddg.critical_path(),
            added_arcs: added,
        }
    }

    /// Enumerates valid serializations among the saturating values and
    /// returns the cheapest.
    fn best_candidate(&self, ddg: &Ddg, t: RegType, saturating: &[NodeId]) -> Option<Candidate> {
        let lp = LongestPaths::new(ddg.graph());
        let asap_v = asap(ddg.graph());
        let to_bottom = longest_to(ddg.graph(), ddg.bottom());
        let cp = ddg.critical_path();

        let mut best: Option<Candidate> = None;
        for &u in saturating {
            let readers = ddg.consumers(u, t);
            for &v in saturating {
                if u == v {
                    continue;
                }
                let mut arcs = Vec::new();
                let mut valid = true;
                let mut cost = 0i64;
                for &reader in &readers {
                    if reader == v {
                        continue;
                    }
                    let lat = ddg.delta_r(reader) - ddg.delta_w(v);
                    if matches!(lp.lp(reader, v), Some(d) if d >= lat) {
                        continue; // already implied
                    }
                    if lp.reaches(v, reader) || v == reader {
                        valid = false; // would create a circuit
                        break;
                    }
                    let through = asap_v[reader.index()] + lat + to_bottom[v.index()].unwrap_or(0);
                    cost = cost.max(through - cp);
                    arcs.push((reader, v, lat));
                }
                if !valid || arcs.is_empty() {
                    continue;
                }
                let cost = cost.max(0);
                let better = match &best {
                    None => true,
                    Some(b) => (cost, arcs.len(), u, v) < (b.cost, b.arcs.len(), b.u, b.v),
                };
                if better {
                    best = Some(Candidate { u, v, arcs, cost });
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactRs;
    use crate::model::{DdgBuilder, OpClass, Target};

    fn parallel_chains(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..k {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        b.finish()
    }

    #[test]
    fn already_fits_leaves_graph_untouched() {
        let mut d = parallel_chains(3);
        let edges_before = d.graph().edge_count();
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 4);
        assert!(matches!(out, ReduceOutcome::AlreadyFits { rs: 3 }));
        assert_eq!(d.graph().edge_count(), edges_before);
        assert_eq!(out.ilp_loss(), 0);
        assert!(out.added_arcs().is_empty());
    }

    #[test]
    fn reduces_parallel_chains() {
        for budget in [1usize, 2, 3] {
            let mut d = parallel_chains(4);
            let out = Reducer::new().reduce(&mut d, RegType::FLOAT, budget);
            assert!(out.fits(), "budget {budget}: {:?}", out);
            let after = ExactRs::new().saturation(&d, RegType::FLOAT);
            assert!(after.proven_optimal);
            assert!(
                after.saturation <= budget,
                "budget {budget}: exact RS after = {}",
                after.saturation
            );
            assert!(d.is_acyclic());
        }
    }

    #[test]
    fn reduction_preserves_original_edges() {
        let mut d = parallel_chains(4);
        let originals: Vec<_> = d.graph().edge_ids().collect();
        let _ = Reducer::new().reduce(&mut d, RegType::FLOAT, 2);
        for e in originals {
            assert!(d.graph().edge_alive(e), "original edge {:?} removed", e);
        }
    }

    #[test]
    fn impossible_budget_fails_cleanly() {
        // two loads into one add: both alive at the add; RS cannot reach 1.
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(l1, add, 4, RegType::FLOAT);
        b.flow(l2, add, 4, RegType::FLOAT);
        b.flow(add, st, 3, RegType::FLOAT);
        let mut d = b.finish();
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 1);
        assert!(!out.fits());
        // the graph must remain schedulable even after a failed attempt
        assert!(d.is_acyclic());
    }

    #[test]
    fn ilp_loss_is_reported() {
        // A diamond of loads where reduction must stretch the critical path.
        let mut d = parallel_chains(6);
        let cp0 = d.critical_path();
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 2);
        assert!(out.fits());
        match out {
            ReduceOutcome::Reduced {
                cp_before,
                cp_after,
                ref added_arcs,
                ..
            } => {
                assert_eq!(cp_before, cp0);
                assert!(cp_after >= cp_before);
                assert!(!added_arcs.is_empty());
            }
            ref other => panic!("expected Reduced, got {:?}", other),
        }
    }

    #[test]
    fn vliw_reduction_keeps_schedulability() {
        let mut b = DdgBuilder::new(Target::vliw());
        for i in 0..4 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        let mut d = b.finish();
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 2);
        assert!(out.fits(), "{:?}", out);
        assert!(d.is_acyclic());
        let after = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(after.saturation <= 2);
    }
}
