//! Exact register saturation by combinatorial branch-and-bound over killing
//! functions.
//!
//! `RS_t(G) = max over valid killing functions k of width(DV_k)` (\[14\]).
//! The decision points are the values with more than one potential killer;
//! the search enumerates their choices with two prunings:
//!
//! - **Optimistic bound:** arcs of `DV_k` only ever *grow* when enforcement
//!   arcs are added, so the DV graph built from the arcs *forced under every
//!   remaining choice* (using the base graph's longest paths and only the
//!   already-fixed enforcement arcs) over-approximates every completion's
//!   antichain. If that optimistic width cannot beat the incumbent, the
//!   subtree is pruned.
//! - **Early exit:** the saturation can never exceed `|V_{R,t}|`; reaching
//!   it stops the search.
//!
//! This solver is exact when it terminates within its node budget (flagged
//! in [`ExactRsResult::proven_optimal`]) and scales far beyond the intLP on
//! the experiment corpus, which is how the optimality study (T1) covers
//! hundreds of DAGs. The intLP of Section 3 ([`crate::ilp::RsIlp`])
//! cross-checks it on small instances.

use crate::killing::{rs_for_killing, KillingFunction};
use crate::model::{Ddg, RegType};
use crate::pkill::{potential_killers, PKill};
use rs_graph::antichain::max_antichain;
use rs_graph::paths::LongestPaths;
use rs_graph::NodeId;
use std::collections::BTreeMap;

/// Configuration of the exact search.
#[derive(Clone, Debug)]
pub struct ExactRs {
    /// Maximum number of complete killing functions evaluated.
    pub node_limit: usize,
}

impl Default for ExactRs {
    fn default() -> Self {
        ExactRs {
            node_limit: 2_000_000,
        }
    }
}

/// Result of the exact computation.
#[derive(Clone, Debug)]
pub struct ExactRsResult {
    /// The register saturation (exact iff `proven_optimal`).
    pub saturation: usize,
    /// Values of a maximum antichain (simultaneously alive under some
    /// schedule).
    pub saturating_values: Vec<NodeId>,
    /// The optimal killing function found.
    pub killing: KillingFunction,
    /// Whether the search space was exhausted (or pruned exactly) within
    /// the node budget.
    pub proven_optimal: bool,
    /// Number of complete killing functions evaluated.
    pub leaves_evaluated: usize,
    /// Number of pruned subtrees.
    pub pruned: usize,
}

impl ExactRs {
    /// Creates the solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `RS_t(G)` exactly (subject to the node budget).
    pub fn saturation(&self, ddg: &Ddg, t: RegType) -> ExactRsResult {
        let values = ddg.values(t);
        let lp = LongestPaths::new(ddg.graph());
        let pk = potential_killers(ddg, t, &lp);

        if values.is_empty() {
            return ExactRsResult {
                saturation: 0,
                saturating_values: Vec::new(),
                killing: KillingFunction {
                    reg_type: t,
                    killer: BTreeMap::new(),
                },
                proven_optimal: true,
                leaves_evaluated: 0,
                pruned: 0,
            };
        }

        // Seed with the heuristic: a valid incumbent and often already
        // optimal, which makes pruning effective immediately.
        let seed = crate::heuristic::GreedyK::new().saturation(ddg, t);
        let mut best_width = seed.saturation;
        let mut best = (seed.killing.clone(), seed.saturating_values.clone());

        let ambiguous = pk.ambiguous_values();
        let mut search = Search {
            ddg,
            t,
            pk: &pk,
            values: &values,
            ambiguous: &ambiguous,
            base_lp: &lp,
            node_limit: self.node_limit,
            leaves: 0,
            pruned: 0,
            exhausted: true,
        };
        let mut assignment: BTreeMap<NodeId, NodeId> = pk
            .killers
            .iter()
            .filter(|(_, ks)| ks.len() == 1)
            .map(|(&u, ks)| (u, ks[0]))
            .collect();
        search.recurse(0, &mut assignment, &mut best_width, &mut best);

        ExactRsResult {
            saturation: best_width,
            saturating_values: best.1,
            killing: best.0,
            proven_optimal: search.exhausted,
            leaves_evaluated: search.leaves,
            pruned: search.pruned,
        }
    }
}

struct Search<'a> {
    ddg: &'a Ddg,
    t: RegType,
    pk: &'a PKill,
    values: &'a [NodeId],
    ambiguous: &'a [NodeId],
    base_lp: &'a LongestPaths,
    node_limit: usize,
    leaves: usize,
    pruned: usize,
    exhausted: bool,
}

impl Search<'_> {
    fn recurse(
        &mut self,
        depth: usize,
        assignment: &mut BTreeMap<NodeId, NodeId>,
        best_width: &mut usize,
        best: &mut (KillingFunction, Vec<NodeId>),
    ) {
        if self.leaves >= self.node_limit {
            self.exhausted = false;
            return;
        }
        if *best_width == self.values.len() {
            return; // cannot do better
        }
        if depth == self.ambiguous.len() {
            self.leaves += 1;
            let k = KillingFunction {
                reg_type: self.t,
                killer: assignment.clone(),
            };
            if let Some(dv) = rs_for_killing(self.ddg, self.t, self.pk, &k) {
                if dv.width > *best_width {
                    *best_width = dv.width;
                    *best = (k, dv.saturating);
                }
            }
            return;
        }

        // Optimistic bound: the DV order that holds for EVERY completion is
        // the one computed from the base longest paths with only fixed
        // choices' killers; enforcement arcs only lengthen paths, adding DV
        // arcs and shrinking antichains. Using the *base* lp under-counts DV
        // arcs, so the antichain is an upper bound.
        let ub = self.optimistic_width(assignment);
        if ub <= *best_width {
            self.pruned += 1;
            return;
        }

        let u = self.ambiguous[depth];
        for &cand in &self.pk.killers[&u] {
            assignment.insert(u, cand);
            self.recurse(depth + 1, assignment, best_width, best);
        }
        assignment.remove(&u);
    }

    /// Upper bound: max antichain of the DV relation built from arcs that
    /// are certain regardless of the remaining choices — for assigned
    /// values, the usual criterion with the *base* lp (a subset of the
    /// extended graph's lp); for unassigned values, the intersection over
    /// all candidate killers.
    fn optimistic_width(&self, assignment: &BTreeMap<NodeId, NodeId>) -> usize {
        let forced_before = |u: NodeId, w: NodeId| -> bool {
            if u == w {
                return false;
            }
            let check = |ku: NodeId| -> bool {
                if ku == w {
                    return self.ddg.delta_r(ku) <= self.ddg.delta_w(w);
                }
                matches!(self.base_lp.lp(ku, w),
                    Some(d) if d >= self.ddg.delta_r(ku) - self.ddg.delta_w(w))
            };
            match assignment.get(&u) {
                Some(&ku) => check(ku),
                None => self.pk.killers[&u].iter().all(|&ku| check(ku)),
            }
        };
        max_antichain(self.values, forced_before).width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::GreedyK;
    use crate::model::{DdgBuilder, OpClass, Target};

    #[test]
    fn trivial_cases_match_heuristic() {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..4 {
            b.op(format!("v{i}"), OpClass::IntAlu, Some(RegType::INT));
        }
        let d = b.finish();
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        assert_eq!(ex.saturation, 4);
        assert!(ex.proven_optimal);
    }

    #[test]
    fn exact_at_least_heuristic() {
        // fan-in/fan-out structure with ambiguous killers
        let mut b = DdgBuilder::new(Target::superscalar());
        let v1 = b.op("v1", OpClass::Load, Some(RegType::INT));
        let v2 = b.op("v2", OpClass::Load, Some(RegType::INT));
        let a = b.op("a", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        let s = b.op("s", OpClass::Store, None);
        b.flow(v1, a, 4, RegType::INT);
        b.flow(v1, c, 4, RegType::INT);
        b.flow(v2, a, 4, RegType::INT);
        b.flow(v2, c, 4, RegType::INT);
        b.flow(a, s, 1, RegType::INT);
        b.flow(c, s, 1, RegType::INT);
        let d = b.finish();
        let h = GreedyK::new().saturation(&d, RegType::INT);
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        assert!(ex.proven_optimal);
        assert!(ex.saturation >= h.saturation);
        // v1 and v2 die exactly when the later of {a, c} defines its value
        // (half-open lifetimes), so at most {v1, v2, first-of-a/c} coexist:
        // RS = 3.
        assert_eq!(ex.saturation, 3);
    }

    #[test]
    fn exact_killing_is_valid() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::Load, Some(RegType::INT));
        let c1 = b.op("c1", OpClass::IntAlu, Some(RegType::INT));
        let c2 = b.op("c2", OpClass::IntAlu, Some(RegType::INT));
        b.flow(v, c1, 4, RegType::INT);
        b.flow(v, c2, 4, RegType::INT);
        let d = b.finish();
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        let lp = rs_graph::paths::LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert!(ex.killing.respects(&pk));
        assert!(ex.proven_optimal);
        // v dies exactly when the later of {c1, c2} defines: RS = 2.
        assert_eq!(ex.saturation, 2);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let mut b = DdgBuilder::new(Target::superscalar());
        // many values with two killers each -> big search space
        let mut stores = Vec::new();
        for i in 0..3 {
            stores.push(b.op(format!("s{i}"), OpClass::Store, None));
        }
        for i in 0..6 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::INT));
            b.flow(v, stores[i % 3], 4, RegType::INT);
            b.flow(v, stores[(i + 1) % 3], 4, RegType::INT);
        }
        let d = b.finish();
        let limited = ExactRs { node_limit: 1 }.saturation(&d, RegType::INT);
        let full = ExactRs::new().saturation(&d, RegType::INT);
        assert!(full.proven_optimal);
        assert!(limited.saturation <= full.saturation);
        // even budget-limited results are achievable lower bounds
        assert!(limited.saturation >= 1);
    }
}
