//! Exact register saturation by combinatorial branch-and-bound over killing
//! functions.
//!
//! `RS_t(G) = max over valid killing functions k of width(DV_k)` (\[14\]).
//! The decision points are the values with more than one potential killer;
//! the search enumerates their choices with two prunings:
//!
//! - **Optimistic bound:** arcs of `DV_k` only ever *grow* when enforcement
//!   arcs are added, so the DV graph built from the arcs *forced under every
//!   remaining choice* (using the base graph's longest paths and only the
//!   already-fixed enforcement arcs) over-approximates every completion's
//!   antichain. If that optimistic width cannot beat the incumbent, the
//!   subtree is pruned.
//! - **Early exit:** the saturation can never exceed `|V_{R,t}|`; reaching
//!   it stops the search.
//!
//! This solver is exact when it terminates within its node budget (flagged
//! in [`ExactRsResult::proven_optimal`]) and scales far beyond the intLP on
//! the experiment corpus, which is how the optimality study (T1) covers
//! hundreds of DAGs. The intLP of Section 3 ([`crate::ilp::RsIlp`])
//! cross-checks it on small instances.

use crate::killing::{rs_for_killing, KillingFunction};
use crate::model::{Ddg, RegType};
use crate::pkill::{potential_killers, PKill};
use rs_graph::antichain::max_antichain;
use rs_graph::paths::LongestPaths;
use rs_graph::NodeId;
use rs_lp::Cancel;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Recursion steps between full (clock-reading) cancellation polls; the
/// cheap latched-flag check runs on every step.
const CANCEL_POLL_MASK: usize = 255;

/// Configuration of the exact search.
#[derive(Clone, Debug)]
pub struct ExactRs {
    /// Maximum number of complete killing functions evaluated (shared
    /// across all workers).
    pub node_limit: usize,
    /// Worker threads. The search tree is split at the root over the first
    /// ambiguous value's candidate killers; workers share the incumbent
    /// width through an atomic, so pruning stays as effective as in the
    /// sequential search. The computed saturation never depends on this
    /// value. The *witness* (killing function / antichain) among
    /// equally-wide optima can vary run-to-run when `threads > 1`: a job
    /// may be pruned by another job's concurrently published equal-width
    /// bound. Every returned witness is valid.
    pub threads: usize,
    /// Cooperative cancellation: a tripped token stops the search like an
    /// exhausted node budget — the incumbent (never worse than the greedy
    /// seed) is returned with `proven_optimal: false` and a valid
    /// [`ExactRsResult::upper_bound`]. The default token never trips.
    pub cancel: Cancel,
}

impl Default for ExactRs {
    fn default() -> Self {
        ExactRs {
            node_limit: 2_000_000,
            threads: 1,
            cancel: Cancel::new(),
        }
    }
}

/// Result of the exact computation.
#[derive(Clone, Debug)]
pub struct ExactRsResult {
    /// The register saturation (exact iff `proven_optimal`).
    pub saturation: usize,
    /// Values of a maximum antichain (simultaneously alive under some
    /// schedule).
    pub saturating_values: Vec<NodeId>,
    /// The optimal killing function found.
    pub killing: KillingFunction,
    /// Whether the search space was exhausted (or pruned exactly) within
    /// the node budget.
    pub proven_optimal: bool,
    /// A proven upper bound on the true saturation: equals `saturation`
    /// when `proven_optimal`, otherwise the root optimistic width — so
    /// `saturation ≤ RS_t(G) ≤ upper_bound` always holds, and an
    /// interrupted run still reports how far its answer can be off.
    pub upper_bound: usize,
    /// Number of complete killing functions evaluated.
    pub leaves_evaluated: usize,
    /// Number of pruned subtrees.
    pub pruned: usize,
}

impl ExactRs {
    /// Creates the solver with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExactRs {
            threads,
            ..Self::default()
        }
    }

    /// Computes `RS_t(G)` exactly (subject to the node budget).
    pub fn saturation(&self, ddg: &Ddg, t: RegType) -> ExactRsResult {
        let values = ddg.values(t);
        let lp = LongestPaths::new(ddg.graph());
        let pk = potential_killers(ddg, t, &lp);

        if values.is_empty() {
            return ExactRsResult {
                saturation: 0,
                saturating_values: Vec::new(),
                killing: KillingFunction {
                    reg_type: t,
                    killer: BTreeMap::new(),
                },
                proven_optimal: true,
                upper_bound: 0,
                leaves_evaluated: 0,
                pruned: 0,
            };
        }

        // Seed with the heuristic: a valid incumbent and often already
        // optimal, which makes pruning effective immediately.
        let seed = crate::heuristic::GreedyK::new().saturation(ddg, t);
        let seed_best = LocalBest {
            width: seed.saturation,
            killing: seed.killing.clone(),
            saturating: seed.saturating_values.clone(),
        };

        let ambiguous = pk.ambiguous_values();
        let base_assignment: BTreeMap<NodeId, NodeId> = pk
            .iter()
            .filter(|(_, ks)| ks.len() == 1)
            .map(|(u, ks)| (u, ks[0]))
            .collect();

        // Root optimistic bound: an upper bound on every completion, hence
        // on the true saturation — what an interrupted run reports as its
        // proven gap.
        let root_ub = optimistic_width(ddg, &lp, &pk, &values, &base_assignment);

        // Shared search state: the incumbent width (pruning bound), the
        // global leaf budget, and diagnostic counters.
        let best_global = AtomicUsize::new(seed.saturation);
        let leaves = AtomicUsize::new(0);
        let pruned = AtomicUsize::new(0);

        let threads = self.threads.max(1);
        let mut job_results: Vec<(LocalBest, bool)>;
        if threads == 1 || ambiguous.is_empty() {
            let mut search = Search {
                ddg,
                t,
                pk: &pk,
                values: &values,
                ambiguous: &ambiguous,
                base_lp: &lp,
                node_limit: self.node_limit,
                leaves: &leaves,
                best_global: &best_global,
                cancel: &self.cancel,
                ticks: 0,
                pruned: 0,
                exhausted: true,
            };
            let mut local = seed_best.clone();
            let mut assignment = base_assignment;
            search.recurse(0, &mut assignment, &mut local);
            pruned.fetch_add(search.pruned, Ordering::Relaxed);
            job_results = vec![(local, search.exhausted)];
        } else {
            // Root split: one job per candidate killer of the first
            // ambiguous value, drained by `threads` scoped workers.
            let u0 = ambiguous[0];
            let cands = pk.of(u0);
            let mut slots: Vec<Option<(LocalBest, bool)>> =
                (0..cands.len()).map(|_| None).collect();
            let next_job = AtomicUsize::new(0);
            let results = Mutex::new(&mut slots);
            std::thread::scope(|s| {
                for _ in 0..threads.min(cands.len()) {
                    s.spawn(|| loop {
                        let j = next_job.fetch_add(1, Ordering::Relaxed);
                        let Some(&cand) = cands.get(j) else { break };
                        let mut search = Search {
                            ddg,
                            t,
                            pk: &pk,
                            values: &values,
                            ambiguous: &ambiguous,
                            base_lp: &lp,
                            node_limit: self.node_limit,
                            leaves: &leaves,
                            best_global: &best_global,
                            cancel: &self.cancel,
                            ticks: 0,
                            pruned: 0,
                            exhausted: true,
                        };
                        let mut local = seed_best.clone();
                        let mut assignment = base_assignment.clone();
                        assignment.insert(u0, cand);
                        search.recurse(1, &mut assignment, &mut local);
                        pruned.fetch_add(search.pruned, Ordering::Relaxed);
                        results.lock().unwrap()[j] = Some((local, search.exhausted));
                    });
                }
            });
            job_results = slots.into_iter().map(|r| r.expect("job ran")).collect();
        }

        // Deterministic merge: widest witness, ties by job order; the seed
        // stands if no job improved on it.
        let exhausted = job_results.iter().all(|(_, e)| *e);
        let mut best = seed_best;
        for (local, _) in job_results.drain(..) {
            if local.width > best.width {
                best = local;
            }
        }
        ExactRsResult {
            upper_bound: if exhausted {
                best.width
            } else {
                root_ub.max(best.width)
            },
            saturation: best.width,
            saturating_values: best.saturating,
            killing: best.killing,
            proven_optimal: exhausted,
            leaves_evaluated: leaves.load(Ordering::Relaxed),
            pruned: pruned.load(Ordering::Relaxed),
        }
    }
}

/// Per-job incumbent: the widest DV witness this job has proven.
#[derive(Clone)]
struct LocalBest {
    width: usize,
    killing: KillingFunction,
    saturating: Vec<NodeId>,
}

struct Search<'a> {
    ddg: &'a Ddg,
    t: RegType,
    pk: &'a PKill,
    values: &'a [NodeId],
    ambiguous: &'a [NodeId],
    base_lp: &'a LongestPaths,
    node_limit: usize,
    /// Leaves evaluated across ALL workers (shared budget).
    leaves: &'a AtomicUsize,
    /// Widest antichain proven by ANY worker — the shared pruning bound.
    /// Reading a stale (smaller) value only costs pruning power, never
    /// correctness.
    best_global: &'a AtomicUsize,
    cancel: &'a Cancel,
    /// Local recursion-step counter driving the amortized full poll.
    ticks: usize,
    pruned: usize,
    exhausted: bool,
}

impl Search<'_> {
    fn recurse(
        &mut self,
        depth: usize,
        assignment: &mut BTreeMap<NodeId, NodeId>,
        local: &mut LocalBest,
    ) {
        if self.leaves.load(Ordering::Relaxed) >= self.node_limit {
            self.exhausted = false;
            return;
        }
        // Cheap latched-flag check every step; the clock-reading poll only
        // every CANCEL_POLL_MASK + 1 steps. Either way an interruption
        // surrenders the proof exactly like an exhausted budget.
        self.ticks += 1;
        if self.cancel.is_set() || (self.ticks & CANCEL_POLL_MASK == 0 && self.cancel.cancelled()) {
            self.exhausted = false;
            return;
        }
        let best = self.best_global.load(Ordering::Relaxed);
        if best == self.values.len() {
            return; // cannot do better
        }
        if depth == self.ambiguous.len() {
            self.leaves.fetch_add(1, Ordering::Relaxed);
            let k = KillingFunction {
                reg_type: self.t,
                killer: assignment.clone(),
            };
            if let Some(dv) = rs_for_killing(self.ddg, self.t, self.pk, &k) {
                if dv.width > local.width {
                    local.width = dv.width;
                    local.killing = k;
                    local.saturating = dv.saturating;
                    self.best_global.fetch_max(dv.width, Ordering::Relaxed);
                }
            }
            return;
        }

        // Optimistic bound: the DV order that holds for EVERY completion is
        // the one computed from the base longest paths with only fixed
        // choices' killers; enforcement arcs only lengthen paths, adding DV
        // arcs and shrinking antichains. Using the *base* lp under-counts DV
        // arcs, so the antichain is an upper bound.
        let ub = self.optimistic_width(assignment);
        if ub <= best.max(local.width) {
            self.pruned += 1;
            return;
        }

        let u = self.ambiguous[depth];
        for &cand in self.pk.of(u) {
            assignment.insert(u, cand);
            self.recurse(depth + 1, assignment, local);
        }
        assignment.remove(&u);
    }

    /// Upper bound: max antichain of the DV relation built from arcs that
    /// are certain regardless of the remaining choices — for assigned
    /// values, the usual criterion with the *base* lp (a subset of the
    /// extended graph's lp); for unassigned values, the intersection over
    /// all candidate killers.
    fn optimistic_width(&self, assignment: &BTreeMap<NodeId, NodeId>) -> usize {
        optimistic_width(self.ddg, self.base_lp, self.pk, self.values, assignment)
    }
}

/// See [`Search::optimistic_width`]; free-standing so the driver can also
/// compute the root bound before any search state exists.
fn optimistic_width(
    ddg: &Ddg,
    base_lp: &LongestPaths,
    pk: &PKill,
    values: &[NodeId],
    assignment: &BTreeMap<NodeId, NodeId>,
) -> usize {
    let forced_before = |u: NodeId, w: NodeId| -> bool {
        if u == w {
            return false;
        }
        let check =
            |ku: NodeId| -> bool { crate::killing::killer_kills_before(ddg, base_lp, ku, w) };
        match assignment.get(&u) {
            Some(&ku) => check(ku),
            None => pk.of(u).iter().all(|&ku| check(ku)),
        }
    };
    max_antichain(values, forced_before).width()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic::GreedyK;
    use crate::model::{DdgBuilder, OpClass, Target};

    #[test]
    fn trivial_cases_match_heuristic() {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..4 {
            b.op(format!("v{i}"), OpClass::IntAlu, Some(RegType::INT));
        }
        let d = b.finish();
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        assert_eq!(ex.saturation, 4);
        assert!(ex.proven_optimal);
    }

    #[test]
    fn exact_at_least_heuristic() {
        // fan-in/fan-out structure with ambiguous killers
        let mut b = DdgBuilder::new(Target::superscalar());
        let v1 = b.op("v1", OpClass::Load, Some(RegType::INT));
        let v2 = b.op("v2", OpClass::Load, Some(RegType::INT));
        let a = b.op("a", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        let s = b.op("s", OpClass::Store, None);
        b.flow(v1, a, 4, RegType::INT);
        b.flow(v1, c, 4, RegType::INT);
        b.flow(v2, a, 4, RegType::INT);
        b.flow(v2, c, 4, RegType::INT);
        b.flow(a, s, 1, RegType::INT);
        b.flow(c, s, 1, RegType::INT);
        let d = b.finish();
        let h = GreedyK::new().saturation(&d, RegType::INT);
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        assert!(ex.proven_optimal);
        assert!(ex.saturation >= h.saturation);
        // v1 and v2 die exactly when the later of {a, c} defines its value
        // (half-open lifetimes), so at most {v1, v2, first-of-a/c} coexist:
        // RS = 3.
        assert_eq!(ex.saturation, 3);
    }

    #[test]
    fn exact_killing_is_valid() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let v = b.op("v", OpClass::Load, Some(RegType::INT));
        let c1 = b.op("c1", OpClass::IntAlu, Some(RegType::INT));
        let c2 = b.op("c2", OpClass::IntAlu, Some(RegType::INT));
        b.flow(v, c1, 4, RegType::INT);
        b.flow(v, c2, 4, RegType::INT);
        let d = b.finish();
        let ex = ExactRs::new().saturation(&d, RegType::INT);
        let lp = rs_graph::paths::LongestPaths::new(d.graph());
        let pk = potential_killers(&d, RegType::INT, &lp);
        assert!(ex.killing.respects(&pk));
        assert!(ex.proven_optimal);
        // v dies exactly when the later of {c1, c2} defines: RS = 2.
        assert_eq!(ex.saturation, 2);
    }

    #[test]
    fn node_budget_degrades_gracefully() {
        let mut b = DdgBuilder::new(Target::superscalar());
        // many values with two killers each -> big search space
        let mut stores = Vec::new();
        for i in 0..3 {
            stores.push(b.op(format!("s{i}"), OpClass::Store, None));
        }
        for i in 0..6 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::INT));
            b.flow(v, stores[i % 3], 4, RegType::INT);
            b.flow(v, stores[(i + 1) % 3], 4, RegType::INT);
        }
        let d = b.finish();
        let limited = ExactRs {
            node_limit: 1,
            ..ExactRs::default()
        }
        .saturation(&d, RegType::INT);
        let full = ExactRs::new().saturation(&d, RegType::INT);
        assert!(full.proven_optimal);
        assert_eq!(full.upper_bound, full.saturation);
        assert!(limited.saturation <= full.saturation);
        // even budget-limited results are achievable lower bounds
        assert!(limited.saturation >= 1);
        // ...and the reported gap brackets the true saturation
        assert!(limited.upper_bound >= full.saturation);
    }

    #[test]
    fn cancelled_search_degrades_with_valid_bounds() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let mut stores = Vec::new();
        for i in 0..3 {
            stores.push(b.op(format!("s{i}"), OpClass::Store, None));
        }
        for i in 0..6 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::INT));
            b.flow(v, stores[i % 3], 4, RegType::INT);
            b.flow(v, stores[(i + 1) % 3], 4, RegType::INT);
        }
        let d = b.finish();
        let full = ExactRs::new().saturation(&d, RegType::INT);
        assert!(full.proven_optimal);

        // Pre-tripped token: the search stops at its first step, degrading
        // to the greedy seed with the proof surrendered — never an error.
        let cancel = rs_lp::Cancel::new();
        cancel.cancel();
        let cut = ExactRs {
            cancel,
            ..ExactRs::default()
        }
        .saturation(&d, RegType::INT);
        assert!(!cut.proven_optimal);
        assert!(cut.saturation >= 1, "greedy seed survives cancellation");
        assert!(cut.saturation <= full.saturation);
        assert!(cut.upper_bound >= full.saturation);

        // Deterministic mid-search trips at various depths: bounds must
        // bracket the true answer no matter where the search stopped.
        for polls in [1, 4, 64] {
            let cut = ExactRs {
                cancel: rs_lp::Cancel::after_polls(polls),
                ..ExactRs::default()
            }
            .saturation(&d, RegType::INT);
            assert!(cut.saturation <= full.saturation, "polls={polls}");
            assert!(cut.upper_bound >= full.saturation, "polls={polls}");
        }
    }

    #[test]
    fn thread_count_does_not_change_saturation() {
        // The same ambiguous-killer structure as the budget test: a search
        // tree wide enough that the root split actually distributes work.
        let mut b = DdgBuilder::new(Target::superscalar());
        let mut stores = Vec::new();
        for i in 0..4 {
            stores.push(b.op(format!("s{i}"), OpClass::Store, None));
        }
        for i in 0..8 {
            let v = b.op(format!("v{i}"), OpClass::Load, Some(RegType::INT));
            b.flow(v, stores[i % 4], 4, RegType::INT);
            b.flow(v, stores[(i + 1) % 4], 4, RegType::INT);
        }
        let d = b.finish();
        let seq = ExactRs::new().saturation(&d, RegType::INT);
        assert!(seq.proven_optimal);
        for threads in [2, 4] {
            let par = ExactRs::with_threads(threads).saturation(&d, RegType::INT);
            assert!(par.proven_optimal);
            assert_eq!(par.saturation, seq.saturation, "threads={threads}");
            // the parallel witness is still a valid killing function
            let lp = rs_graph::paths::LongestPaths::new(d.graph());
            let pk = potential_killers(&d, RegType::INT, &lp);
            assert!(par.killing.respects(&pk));
        }
    }
}
