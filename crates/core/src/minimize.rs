//! The register-*minimization* strawman of Section 6.
//!
//! Classic pre-pass techniques minimize the register requirement (under a
//! critical-path constraint) regardless of how many registers exist. The
//! paper argues this is "inherently worse" than saturation-based reduction:
//!
//! - when `RS ≤ R` the minimizer still adds arcs while the RS approach adds
//!   none (Figure 2(b) vs the untouched DAG);
//! - when `RS > R` the minimizer pushes the need to the *lowest* level
//!   instead of stopping at `R`, over-serializing and under-using registers
//!   (Figure 2(b) vs 2(c)).
//!
//! This module implements that strawman faithfully so experiment T4 can
//! reproduce the comparison: it repeatedly applies **zero-ILP-cost**
//! serializations (the footnote-4 discipline: "minimize the register
//! requirement under critical path constraints") as long as they lower the
//! saturation estimate.

use crate::heuristic::GreedyK;
use crate::model::{Ddg, RegType};
use rs_graph::paths::{asap, longest_to, LongestPaths};
use rs_graph::NodeId;

/// Result of the minimization pass.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// Saturation before.
    pub rs_before: usize,
    /// Saturation after (the minimized register need bound).
    pub rs_after: usize,
    /// Arcs added.
    pub added_arcs: Vec<(NodeId, NodeId, i64)>,
    /// Critical path before (unchanged after, by construction).
    pub cp_before: i64,
    /// Critical path after (== `cp_before`; asserted).
    pub cp_after: i64,
}

/// Minimizes the register saturation of type `t` under an unchanged critical
/// path, mutating `ddg` in place.
pub fn minimize_register_need(ddg: &mut Ddg, t: RegType) -> MinimizeOutcome {
    let greedy = GreedyK::new();
    let first = greedy.saturation(ddg, t);
    let rs_before = first.saturation;
    let cp_before = ddg.critical_path();
    let mut added = Vec::new();
    let mut current = first;

    let step_limit = 4 * ddg.num_ops() * ddg.num_ops();
    for _ in 0..step_limit {
        let Some(arcs) = zero_cost_candidate(ddg, t, &current.saturating_values, cp_before) else {
            break;
        };
        // Tentatively apply; keep only if the saturation estimate drops.
        let ids: Vec<_> = arcs
            .iter()
            .map(|&(s, d, lat)| ddg.add_serial(s, d, lat))
            .collect();
        let trial = greedy.saturation(ddg, t);
        if trial.saturation < current.saturation {
            added.extend(arcs);
            current = trial;
        } else {
            for e in ids {
                ddg.remove_edge(e);
            }
            break;
        }
    }

    let cp_after = ddg.critical_path();
    // lint:allow(D-04) both cp values are returned in MinimizeOutcome, so callers and tests observe the invariant directly
    debug_assert_eq!(
        cp_before, cp_after,
        "minimization must not lengthen the critical path"
    );
    MinimizeOutcome {
        rs_before,
        rs_after: current.saturation,
        added_arcs: added,
        cp_before,
        cp_after,
    }
}

/// A serialization among saturating values whose projected critical-path
/// increase is zero, preferring the one ordering the most values.
fn zero_cost_candidate(
    ddg: &Ddg,
    t: RegType,
    saturating: &[NodeId],
    cp: i64,
) -> Option<Vec<(NodeId, NodeId, i64)>> {
    let lp = LongestPaths::new(ddg.graph());
    let asap_v = asap(ddg.graph());
    let to_bottom = longest_to(ddg.graph(), ddg.bottom());

    for &u in saturating {
        let readers = ddg.consumers(u, t);
        'next_v: for &v in saturating {
            if u == v {
                continue;
            }
            let mut arcs = Vec::new();
            for &reader in &readers {
                if reader == v {
                    continue;
                }
                let lat = ddg.delta_r(reader) - ddg.delta_w(v);
                if matches!(lp.lp(reader, v), Some(d) if d >= lat) {
                    continue;
                }
                if lp.reaches(v, reader) {
                    continue 'next_v;
                }
                let through = asap_v[reader.index()] + lat + to_bottom[v.index()].unwrap_or(0);
                if through > cp {
                    continue 'next_v; // would stretch the critical path
                }
                arcs.push((reader, v, lat));
            }
            if !arcs.is_empty() {
                return Some(arcs);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DdgBuilder, OpClass, Target};

    /// Figure 2-like: one long-latency value `a` (17 cycles) next to three
    /// short independent values, each with its own consumer. Minimization
    /// serializes the short lifetimes under `a`'s shadow even though
    /// registers may be plentiful.
    fn figure2_like() -> Ddg {
        let mut bld = DdgBuilder::new(Target::superscalar());
        let a = bld.op("a", OpClass::Load, Some(RegType::FLOAT));
        let sa = bld.op("sa", OpClass::Store, None);
        bld.flow(a, sa, 17, RegType::FLOAT);
        for name in ["b", "c", "d"] {
            let v = bld.op(name, OpClass::IntAlu, Some(RegType::FLOAT));
            let s = bld.op(format!("s{name}"), OpClass::Store, None);
            bld.flow(v, s, 1, RegType::FLOAT);
        }
        bld.finish()
    }

    #[test]
    fn minimization_adds_arcs_even_with_plentiful_registers() {
        let mut d = figure2_like();
        let out = minimize_register_need(&mut d, RegType::FLOAT);
        assert_eq!(out.rs_before, 4);
        assert!(out.rs_after < out.rs_before, "{:?}", out);
        assert!(!out.added_arcs.is_empty());
        assert_eq!(out.cp_before, out.cp_after);
        assert!(d.is_acyclic());
    }

    #[test]
    fn minimization_respects_critical_path() {
        let mut d = figure2_like();
        let cp0 = d.critical_path();
        let _ = minimize_register_need(&mut d, RegType::FLOAT);
        assert_eq!(d.critical_path(), cp0);
    }

    #[test]
    fn nothing_to_do_on_single_value() {
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op("v", OpClass::IntAlu, Some(RegType::INT));
        let mut d = b.finish();
        let out = minimize_register_need(&mut d, RegType::INT);
        assert_eq!(out.rs_before, 1);
        assert_eq!(out.rs_after, 1);
        assert!(out.added_arcs.is_empty());
    }
}
