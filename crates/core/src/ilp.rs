//! The paper's integer linear programs.
//!
//! - [`RsIlp`]: Section 3 — exact register saturation. `O(n²)` integer
//!   variables and `O(m + n²)` constraints (asserted by tests and measured
//!   by experiment T3).
//! - [`ReduceIlp`]: Section 4 — optimal saturation reduction: a schedule
//!   maximising register use *within* `R` registers (interference-graph
//!   coloring with `R` colors) under minimal total schedule time, followed
//!   by the Theorem-4.2 serialization arcs.
//!
//! ## Variable cast (Section 3)
//!
//! | variable | kind | meaning |
//! |---|---|---|
//! | `σ_u`   | integer in `[asap(u), alap(u, T)]` | issue date (`T = Σ_e δ(e)`) |
//! | `k_u`   | integer (via `max` linearization) | killing date of value `u` |
//! | `s_{u,v}` | binary | lifetimes of `u` and `v` interfere |
//! | `x_u`   | binary | `u` belongs to the chosen independent set of the complement interference graph |
//!
//! ## Encodings
//!
//! `s = 1 ⟹ (k_u > def_v ∧ k_v > def_u)` is the only direction needed to
//! *maximize* `Σ x_u` exactly: raising `s` is pure profit for the solver, so
//! at the optimum `s_{u,v} = 1` exactly on the schedulable interferences.
//! The paper's full `⟺` (needed for the *reduction* intLP, where `s = 0`
//! must be justified) is available via [`RsIlp::full_iff`] and is always
//! used by [`ReduceIlp`].

use crate::lifetime;
use crate::model::{Ddg, RegType, TargetKind};
use crate::pkill::never_simultaneously_alive;
use rs_graph::paths::{alap, asap, LongestPaths};
use rs_graph::{topo, NodeId};
use rs_lp::linearize::{iff_conjunction_ge, indicator_ge, max_of};
use rs_lp::{
    Cmp, LinExpr, MilpConfig, MilpError, MilpStats, Model, ModelStats, SearchCheckpoint, Sense,
    VarId, VarKind,
};
use std::collections::BTreeMap;

/// Interference variable of a value pair.
#[derive(Clone, Copy, Debug)]
pub enum PairVar {
    /// A genuine binary decision.
    Var(VarId),
    /// Pre-filtered: the pair can never interfere (Section 3 optimization).
    Never,
}

/// Variable handles of a built saturation model.
#[derive(Clone, Debug)]
pub struct RsIlpVars {
    /// `σ_u` per node.
    pub sigma: Vec<VarId>,
    /// `k_u` per value.
    pub kill: BTreeMap<NodeId, VarId>,
    /// `s_{u,v}` per unordered value pair (`u < v`).
    pub pair: BTreeMap<(NodeId, NodeId), PairVar>,
    /// `x_u` per value.
    pub x: BTreeMap<NodeId, VarId>,
}

/// Section-3 exact register saturation via integer programming.
#[derive(Clone, Debug)]
pub struct RsIlp {
    /// Use the full `⟺` interference encoding (paper-faithful; strictly
    /// larger model). The default one-directional encoding is exact for the
    /// maximization objective.
    pub full_iff: bool,
    /// Apply the Section-3 pair pre-filter (`never simultaneously alive`).
    pub prefilter_pairs: bool,
    /// Drop scheduling constraints of redundant arcs (Section-3
    /// optimization: an arc is redundant when another path already enforces
    /// at least its latency).
    pub eliminate_redundant_arcs: bool,
    /// Override the schedule horizon `T` (defaults to the paper's
    /// `Σ_e δ(e)`). Smaller horizons shrink big-M constants; the result is
    /// the saturation restricted to schedules of that makespan.
    pub horizon_override: Option<i64>,
    /// Branch-and-bound budget and engine knobs (cutting planes, pricing
    /// rule, bound propagation, threads — see [`MilpConfig`]).
    pub milp: MilpConfig,
}

impl Default for RsIlp {
    fn default() -> Self {
        RsIlp {
            full_iff: false,
            prefilter_pairs: true,
            eliminate_redundant_arcs: false,
            horizon_override: None,
            milp: MilpConfig::default(),
        }
    }
}

/// Result of the Section-3 intLP.
#[derive(Clone, Debug)]
pub struct RsIlpResult {
    /// The register saturation `RS_t(G)`.
    pub saturation: usize,
    /// A witness schedule achieving it.
    pub schedule: Vec<i64>,
    /// The saturating values (chosen independent set).
    pub saturating_values: Vec<NodeId>,
    /// Model size (for the complexity table).
    pub model_stats: ModelStats,
    /// Branch-and-bound solve statistics (nodes, LP solves, incremental
    /// dive-tableau re-solves and reinstall count, pseudocost branching
    /// counters, pivots, relaxation tableau shape) — surfaced by
    /// `rsat analyze --ilp --stats`.
    pub milp_stats: MilpStats,
    /// True iff branch-and-bound proved optimality within budget.
    pub proven_optimal: bool,
    /// A proven upper bound on the true saturation, derived from the
    /// branch-and-bound dual bound: equals `saturation` when
    /// `proven_optimal`, otherwise `saturation ≤ RS_t(G) ≤ upper_bound`.
    /// Clamped to `|V_{R,t}|` (always a valid bound) when the search was
    /// interrupted before producing a finite dual bound.
    pub upper_bound: usize,
}

/// Outcome of a resumable saturation solve: the result plus, when the
/// branch-and-bound search was interrupted (budget, deadline, or
/// cancellation), a [`SearchCheckpoint`] that continues it exactly where
/// it stopped.
#[derive(Clone, Debug)]
pub struct IlpRun {
    /// The solver result, exactly as [`RsIlp::saturation`] reports it.
    pub result: Result<RsIlpResult, MilpError>,
    /// Present iff the search was interrupted; feed back through
    /// [`RsIlp::saturation_resumable`] (with a larger budget) to continue
    /// node-for-node.
    pub checkpoint: Option<SearchCheckpoint>,
}

impl RsIlp {
    /// Creates the solver with the default (fast, exact) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with `threads` branch-and-bound workers.
    /// The computed saturation does not depend on the thread count.
    pub fn with_threads(threads: usize) -> Self {
        RsIlp {
            milp: MilpConfig::with_threads(threads),
            ..Self::default()
        }
    }

    /// Builds the Section-3 model without solving it.
    pub fn build_model(&self, ddg: &Ddg, t: RegType) -> (Model, RsIlpVars) {
        let n = ddg.num_ops();
        let horizon = self.horizon_override.unwrap_or_else(|| ddg.horizon());
        let asap_v = asap(ddg.graph());
        let alap_v = alap(ddg.graph(), horizon);

        let mut m = Model::new(Sense::Maximize);

        // σ_u with the paper's domain [asap, alap(T)].
        let sigma: Vec<VarId> = (0..n)
            .map(|i| {
                m.add_named_var(
                    format!("sigma_{i}"),
                    VarKind::Integer,
                    asap_v[i] as f64,
                    alap_v[i].max(asap_v[i]) as f64,
                )
            })
            .collect();

        // Precedence constraints (skipping redundant arcs if requested).
        for e in ddg.graph().edge_ids() {
            let u = ddg.graph().src(e);
            let v = ddg.graph().dst(e);
            let lat = ddg.graph().latency(e);
            if self.eliminate_redundant_arcs && edge_redundant(ddg, e) {
                continue;
            }
            m.add_constraint(
                LinExpr::from(sigma[v.index()]) - sigma[u.index()],
                Cmp::Ge,
                lat as f64,
            );
        }

        // Killing dates via the max linearization.
        let values = ddg.values(t);
        let mut kill = BTreeMap::new();
        for &u in &values {
            let terms: Vec<LinExpr> = ddg
                .consumers(u, t)
                .iter()
                .map(|&v| LinExpr::from(sigma[v.index()]) + ddg.delta_r(v) as f64)
                .collect();
            let k = max_of(&mut m, &format!("kill_{}", u.index()), &terms);
            kill.insert(u, k);
        }

        // Interference binaries per unordered pair.
        let lp = LongestPaths::new(ddg.graph());
        let mut pair = BTreeMap::new();
        for (i, &u) in values.iter().enumerate() {
            for &v in &values[i + 1..] {
                if self.prefilter_pairs && never_simultaneously_alive(ddg, t, &lp, u, v) {
                    pair.insert((u, v), PairVar::Never);
                    continue;
                }
                let s = m.add_named_var(
                    format!("s_{}_{}", u.index(), v.index()),
                    VarKind::Binary,
                    0.0,
                    1.0,
                );
                // s = 1 ⟹ k_u ≥ σ_v + δw(v) + 1  ∧  k_v ≥ σ_u + δw(u) + 1
                let cond_u = LinExpr::from(kill[&u]) - sigma[v.index()];
                let cond_v = LinExpr::from(kill[&v]) - sigma[u.index()];
                let rhs_u = (ddg.delta_w(v) + 1) as f64;
                let rhs_v = (ddg.delta_w(u) + 1) as f64;
                if self.full_iff {
                    iff_conjunction_ge(
                        &mut m,
                        &format!("iff_{}_{}", u.index(), v.index()),
                        s,
                        &[(cond_u, rhs_u), (cond_v, rhs_v)],
                        1.0,
                    );
                } else {
                    indicator_ge(&mut m, s, &cond_u, rhs_u);
                    indicator_ge(&mut m, s, &cond_v, rhs_v);
                }
                pair.insert((u, v), PairVar::Var(s));
            }
        }

        // Independent-set variables and constraints:
        // s_{u,v} = 0 ⟹ x_u + x_v ≤ 1, linearly: x_u + x_v ≤ 1 + s_{u,v}.
        let mut x = BTreeMap::new();
        for &u in &values {
            x.insert(
                u,
                m.add_named_var(format!("x_{}", u.index()), VarKind::Binary, 0.0, 1.0),
            );
        }
        for (&(u, v), &pv) in &pair {
            let lhs = LinExpr::from(x[&u]) + x[&v];
            match pv {
                PairVar::Never => m.add_constraint(lhs, Cmp::Le, 1.0),
                PairVar::Var(s) => m.add_constraint(lhs - s, Cmp::Le, 1.0),
            }
        }

        // Objective: maximize Σ x_u.
        let mut obj = LinExpr::new();
        for &u in &values {
            obj = obj + x[&u];
        }
        m.set_objective(obj);

        (
            m,
            RsIlpVars {
                sigma,
                kill,
                pair,
                x,
            },
        )
    }

    /// Solves for `RS_t(G)`.
    pub fn saturation(&self, ddg: &Ddg, t: RegType) -> Result<RsIlpResult, MilpError> {
        self.saturation_resumable(ddg, t, None).result
    }

    /// [`RsIlp::saturation`], but an interrupted branch-and-bound search
    /// also yields a [`SearchCheckpoint`], and an accepted `resume`
    /// checkpoint (from an earlier interrupted solve of the *same* DDG,
    /// type, and configuration) continues that search node-for-node
    /// instead of restarting. A mismatched checkpoint is silently ignored
    /// ([`MilpStats::resumed`] reports which happened).
    pub fn saturation_resumable(
        &self,
        ddg: &Ddg,
        t: RegType,
        resume: Option<&SearchCheckpoint>,
    ) -> IlpRun {
        let values = ddg.values(t);
        if values.is_empty() {
            return IlpRun {
                result: Ok(RsIlpResult {
                    saturation: 0,
                    schedule: lifetime::asap_schedule(ddg),
                    saturating_values: Vec::new(),
                    model_stats: ModelStats::default(),
                    milp_stats: MilpStats::default(),
                    proven_optimal: true,
                    upper_bound: 0,
                }),
                checkpoint: None,
            };
        }
        let (model, vars) = self.build_model(ddg, t);
        let stats = model.stats();
        let run = rs_lp::solve_resumable(&model, &self.milp, resume);
        let sol = match run.result {
            Ok(sol) => sol,
            Err(e) => {
                return IlpRun {
                    result: Err(e),
                    checkpoint: run.checkpoint,
                }
            }
        };
        let schedule: Vec<i64> = vars
            .sigma
            .iter()
            .map(|&v| sol.values[v.index()].round() as i64)
            .collect();
        let saturating: Vec<NodeId> = vars
            .x
            .iter()
            .filter(|(_, &xv)| sol.values[xv.index()].round() as i64 == 1)
            .map(|(&u, _)| u)
            .collect();
        if !lifetime::is_valid_schedule(ddg, &schedule) {
            // A rounded optimum violating precedence means numerical
            // breakdown upstream; surface it as a typed error instead of
            // returning a bogus saturation certificate.
            return IlpRun {
                result: Err(MilpError::Numerical),
                checkpoint: run.checkpoint,
            };
        }
        let saturation = sol.objective.round() as usize;
        let upper_bound = if sol.stats.proven_optimal {
            saturation
        } else {
            // The MILP dual bound is in objective space (= saturation for
            // this maximize model). |values| is always valid, so clamp a
            // non-finite or out-of-range bound to it.
            let db = sol.stats.dual_bound;
            if db.is_finite() && db < values.len() as f64 {
                (db + 1e-6).floor().max(saturation as f64) as usize
            } else {
                values.len()
            }
        };
        IlpRun {
            result: Ok(RsIlpResult {
                saturation,
                schedule,
                saturating_values: saturating,
                model_stats: stats,
                milp_stats: sol.stats,
                proven_optimal: sol.stats.proven_optimal,
                upper_bound,
            }),
            checkpoint: run.checkpoint,
        }
    }
}

/// An arc is redundant for the scheduling constraints when the rest of the
/// graph already enforces at least its latency (Section-3 optimization).
fn edge_redundant(ddg: &Ddg, e: rs_graph::EdgeId) -> bool {
    let u = ddg.graph().src(e);
    let v = ddg.graph().dst(e);
    let lat = ddg.graph().latency(e);
    let mut g = ddg.graph().clone();
    g.remove_edge(e);
    matches!(
        rs_graph::paths::longest_from(&g, u)[v.index()],
        Some(d) if d >= lat
    )
}

/// Section-4 exact register-saturation reduction.
#[derive(Clone, Debug)]
pub struct ReduceIlp {
    /// Schedule horizon strategy: start at `2·CP + 8` and double towards
    /// the paper's `T = Σ δ(e)` until feasible (each smaller horizon is a
    /// restriction; a feasible minimal-makespan solution inside a horizon
    /// is globally optimal because the objective is the makespan itself).
    pub escalate_horizon: bool,
    /// Branch-and-bound budget (per horizon attempt).
    pub milp: MilpConfig,
}

impl Default for ReduceIlp {
    fn default() -> Self {
        ReduceIlp {
            escalate_horizon: true,
            milp: MilpConfig::default(),
        }
    }
}

/// Result of the exact reduction.
#[derive(Clone, Debug)]
pub struct ReduceIlpResult {
    /// The witness schedule found by the intLP.
    pub schedule: Vec<i64>,
    /// Register index assigned to each value by the coloring.
    pub registers: BTreeMap<NodeId, usize>,
    /// Serialization arcs added to the DDG (src, dst, latency).
    pub added_arcs: Vec<(NodeId, NodeId, i64)>,
    /// Critical path after reduction.
    pub cp_after: i64,
    /// Total schedule time `σ(⊥)` of the witness (the minimized objective).
    pub makespan: i64,
    /// True iff the MILP proved optimality.
    pub proven_optimal: bool,
    /// True iff cycle repair had to drop arcs and re-verify (see module
    /// docs); the reduction is still sound but may not be arc-minimal.
    pub repaired: bool,
}

/// Why the exact reduction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReduceIlpError {
    /// No schedule within the horizon needs ≤ R registers: spilling is
    /// unavoidable (Section 4's terminal case).
    SpillUnavoidable,
    /// The MILP budget ran out.
    Budget,
    /// The pre-solve static audit rejected the generated model — a
    /// formulation bug, never a property of the input DDG.
    Rejected(rs_lp::AuditError),
}

impl std::fmt::Display for ReduceIlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceIlpError::SpillUnavoidable => {
                write!(
                    f,
                    "register saturation cannot be reduced: spill code is unavoidable"
                )
            }
            ReduceIlpError::Budget => write!(f, "MILP budget exhausted"),
            ReduceIlpError::Rejected(e) => write!(f, "reduction model rejected by audit: {e}"),
        }
    }
}

impl std::error::Error for ReduceIlpError {}

impl ReduceIlp {
    /// Creates the solver with defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default configuration with `threads` branch-and-bound workers.
    pub fn with_threads(threads: usize) -> Self {
        ReduceIlp {
            milp: MilpConfig::with_threads(threads),
            ..Self::default()
        }
    }

    /// Builds the Section-4 model for register budget `r`.
    pub fn build_model(
        &self,
        ddg: &Ddg,
        t: RegType,
        r: usize,
        horizon: i64,
    ) -> (Model, RsIlpVars, BTreeMap<(NodeId, usize), VarId>) {
        // Reuse the Section-3 variable cast with the full ⟺ encoding (both
        // directions are load-bearing here: a zero `s` licenses register
        // sharing, so it must imply real lifetime disjointness).
        let rs = RsIlp {
            full_iff: true,
            prefilter_pairs: true,
            eliminate_redundant_arcs: false,
            horizon_override: Some(horizon),
            milp: self.milp.clone(),
        };
        let (mut m, vars) = rs.build_model(ddg, t);

        // Strip the IS machinery: rebuild objective; keep x_u variables
        // unused (they remain in the model but no longer matter). To avoid
        // dead binaries we instead fix them to 0.
        for &xv in vars.x.values() {
            m.set_bounds(xv, 0.0, 0.0);
        }

        // Register assignment binaries.
        let values = ddg.values(t);
        let mut assign = BTreeMap::new();
        for &u in &values {
            let mut sum = LinExpr::new();
            for i in 0..r {
                let v = m.add_named_var(
                    format!("reg_{}_{}", u.index(), i),
                    VarKind::Binary,
                    0.0,
                    1.0,
                );
                assign.insert((u, i), v);
                sum = sum + v;
            }
            m.add_constraint(sum, Cmp::Eq, 1.0);
        }
        // Interfering values cannot share a register:
        // s_{u,v} = 1 ⟹ x^i_u + x^i_v ≤ 1, i.e. x^i_u + x^i_v + s ≤ 2.
        for (&(u, v), &pv) in &vars.pair {
            if let PairVar::Var(s) = pv {
                for i in 0..r {
                    let lhs = LinExpr::from(assign[&(u, i)]) + assign[&(v, i)] + s;
                    m.add_constraint(lhs, Cmp::Le, 2.0);
                }
            }
        }

        // Objective: minimize the total schedule time σ(⊥). The base model
        // was built with Maximize, so negate.
        m.set_objective(-LinExpr::from(vars.sigma[ddg.bottom().index()]));
        (m, vars, assign)
    }

    /// Reduces `RS_t` of `ddg` below `r` by solving the Section-4 intLP and
    /// adding the Theorem-4.2 serialization arcs **in place**.
    pub fn reduce(
        &self,
        ddg: &mut Ddg,
        t: RegType,
        r: usize,
    ) -> Result<ReduceIlpResult, ReduceIlpError> {
        assert!(r >= 1, "register budget must be positive");
        let t_full = ddg.horizon();
        let mut horizon = if self.escalate_horizon {
            (2 * ddg.critical_path() + 8).min(t_full)
        } else {
            t_full
        };
        loop {
            let (model, vars, assign) = self.build_model(ddg, t, r, horizon);
            match rs_lp::solve(&model, &self.milp) {
                Ok(sol) => {
                    let schedule: Vec<i64> = vars
                        .sigma
                        .iter()
                        .map(|&v| sol.values[v.index()].round() as i64)
                        .collect();
                    let registers: BTreeMap<NodeId, usize> = assign
                        .iter()
                        .filter(|(_, &v)| sol.values[v.index()].round() as i64 == 1)
                        .map(|(&(u, i), _)| (u, i))
                        .collect();
                    let makespan = schedule[ddg.bottom().index()];
                    let (added, repaired) = add_serialization_arcs(ddg, t, &schedule, r);
                    return Ok(ReduceIlpResult {
                        schedule,
                        registers,
                        added_arcs: added,
                        cp_after: ddg.critical_path(),
                        makespan,
                        proven_optimal: sol.stats.proven_optimal && !repaired,
                        repaired,
                    });
                }
                Err(MilpError::Infeasible) if horizon < t_full => {
                    horizon = (horizon * 2).min(t_full);
                }
                Err(MilpError::Infeasible) => return Err(ReduceIlpError::SpillUnavoidable),
                Err(MilpError::Unbounded) => unreachable!("bounded domains"),
                Err(MilpError::BudgetExhausted) | Err(MilpError::Numerical) => {
                    return Err(ReduceIlpError::Budget)
                }
                Err(MilpError::Audit(e)) => return Err(ReduceIlpError::Rejected(e)),
            }
        }
    }
}

/// Adds the Theorem-4.2 serialization arcs for the lifetime order of
/// `schedule`, skipping arcs the graph already implies, and repairing any
/// introduced circuits by dropping offending arcs (followed by an RS
/// re-verification against `r`).
///
/// Returns the added arcs and whether repair was needed.
pub fn add_serialization_arcs(
    ddg: &mut Ddg,
    t: RegType,
    schedule: &[i64],
    r: usize,
) -> (Vec<(NodeId, NodeId, i64)>, bool) {
    let values = ddg.values(t);
    let lp = LongestPaths::new(ddg.graph());
    let sequential = matches!(ddg.target().kind, TargetKind::Superscalar);

    let mut added: Vec<(NodeId, NodeId, i64)> = Vec::new();
    let mut edge_ids = Vec::new();
    for &u in &values {
        let kill_u = lifetime::killing_date(ddg, t, schedule, u);
        let cons_u = ddg.consumers(u, t);
        for &v in &values {
            if u == v {
                continue;
            }
            let def_v = lifetime::definition_date(ddg, schedule, v);
            if kill_u > def_v {
                continue; // not ordered u ≺ v under σ
            }
            for &reader in &cons_u {
                if reader == v {
                    continue; // the proof excludes v itself
                }
                // Latency: sequential semantics uses 1 when the reader is
                // strictly before v in σ (paper's superscalar case);
                // otherwise the offset formula δr(u') − δw(v).
                let offset = ddg.delta_r(reader) - ddg.delta_w(v);
                let lat = if sequential && schedule[v.index()] > schedule[reader.index()] {
                    offset.max(1)
                } else {
                    offset
                };
                // Skip arcs already implied.
                if matches!(lp.lp(reader, v), Some(d) if d >= lat) {
                    continue;
                }
                let e = ddg.add_serial(reader, v, lat);
                edge_ids.push(e);
                added.push((reader, v, lat));
            }
        }
    }

    // Circuit elimination (Section 4's VLIW caveat, handled lazily): drop
    // added arcs on cycles until acyclic.
    let mut repaired = false;
    while !ddg.is_acyclic() {
        repaired = true;
        let cyc = topo::cycle_witness(ddg.graph()).expect("cyclic graph has a witness");
        // find an added arc on the cycle
        let mut dropped = false;
        for w in 0..cyc.len() {
            let a = cyc[w];
            let b = cyc[(w + 1) % cyc.len()];
            if let Some(pos) = added.iter().position(|&(s, d, _)| s == a && d == b) {
                ddg.remove_edge(edge_ids[pos]);
                edge_ids.remove(pos);
                added.remove(pos);
                dropped = true;
                break;
            }
        }
        assert!(
            dropped,
            "cycle contains no added arc — the original DDG was cyclic?"
        );
    }
    if repaired {
        // The dropped enforcement may have raised RS again; callers treat
        // `repaired` results as sound-but-possibly-suboptimal. Verify and,
        // if needed, let the heuristic reducer finish the job.
        let rs_now = crate::heuristic::GreedyK::new().saturation(ddg, t);
        if rs_now.saturation > r {
            let _ = crate::reduce::Reducer::default().reduce(ddg, t, r);
        }
    }
    (added, repaired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactRs;
    use crate::model::{DdgBuilder, OpClass, Target};

    fn two_loads() -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        let l1 = b.op("l1", OpClass::Load, Some(RegType::FLOAT));
        let l2 = b.op("l2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(l1, add, 4, RegType::FLOAT);
        b.flow(l2, add, 4, RegType::FLOAT);
        b.flow(add, st, 3, RegType::FLOAT);
        b.finish()
    }

    #[test]
    fn rs_ilp_matches_enumeration_small() {
        let d = two_loads();
        let ilp = RsIlp::new().saturation(&d, RegType::FLOAT).unwrap();
        let en = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(ilp.proven_optimal && en.proven_optimal);
        assert_eq!(ilp.saturation, en.saturation);
        assert_eq!(ilp.saturation, 2);
        // witness schedule really needs that many registers
        let rn = lifetime::register_need(&d, RegType::FLOAT, &ilp.schedule);
        assert_eq!(rn, ilp.saturation);
    }

    #[test]
    fn rs_ilp_full_iff_agrees() {
        let d = two_loads();
        let fast = RsIlp::new().saturation(&d, RegType::FLOAT).unwrap();
        let full = RsIlp {
            full_iff: true,
            ..RsIlp::new()
        }
        .saturation(&d, RegType::FLOAT)
        .unwrap();
        assert_eq!(fast.saturation, full.saturation);
    }

    #[test]
    fn rs_ilp_size_bounds() {
        // O(n²) integral variables, O(m + n²) constraints (paper claim).
        let d = two_loads();
        let (model, _) = RsIlp::new().build_model(&d, RegType::FLOAT);
        let st = model.stats();
        let n = d.num_ops();
        let m_edges = d.graph().edge_count();
        assert!(
            st.variables() <= 8 * n * n,
            "vars {} vs n² {}",
            st.variables(),
            n * n
        );
        assert!(
            st.constraints <= m_edges + 12 * n * n,
            "constraints {} vs m + n² = {}",
            st.constraints,
            m_edges + n * n
        );
    }

    #[test]
    fn redundant_arc_elimination_shrinks_model() {
        let mut b = DdgBuilder::new(Target::superscalar());
        let a = b.op("a", OpClass::IntAlu, Some(RegType::INT));
        let c = b.op("c", OpClass::IntAlu, Some(RegType::INT));
        let e = b.op("e", OpClass::Store, None);
        b.flow(a, c, 1, RegType::INT);
        b.flow(c, e, 1, RegType::INT);
        b.serial(a, e, 1); // redundant: path a -> c -> e has latency 2 >= 1
        let d = b.finish();
        let base = RsIlp::new().build_model(&d, RegType::INT).0.stats();
        let opt = RsIlp {
            eliminate_redundant_arcs: true,
            ..RsIlp::new()
        }
        .build_model(&d, RegType::INT)
        .0
        .stats();
        assert!(opt.constraints < base.constraints);
        // and the answer is unchanged
        let s1 = RsIlp::new().saturation(&d, RegType::INT).unwrap();
        let s2 = RsIlp {
            eliminate_redundant_arcs: true,
            ..RsIlp::new()
        }
        .saturation(&d, RegType::INT)
        .unwrap();
        assert_eq!(s1.saturation, s2.saturation);
    }

    #[test]
    fn reduce_ilp_brings_saturation_down() {
        // Two independent def-use chains: RS = 2, reducible to 1 by
        // serializing one lifetime after the other.
        let mut b = DdgBuilder::new(Target::superscalar());
        let v1 = b.op("v1", OpClass::IntAlu, Some(RegType::INT));
        let s1 = b.op("s1", OpClass::Store, None);
        let v2 = b.op("v2", OpClass::IntAlu, Some(RegType::INT));
        let s2 = b.op("s2", OpClass::Store, None);
        b.flow(v1, s1, 1, RegType::INT);
        b.flow(v2, s2, 1, RegType::INT);
        let mut d = b.finish();
        assert_eq!(ExactRs::new().saturation(&d, RegType::INT).saturation, 2);

        let res = ReduceIlp::new().reduce(&mut d, RegType::INT, 1).unwrap();
        assert!(d.is_acyclic());
        let after = ExactRs::new().saturation(&d, RegType::INT);
        assert!(after.proven_optimal);
        assert!(
            after.saturation <= 1,
            "RS after reduction = {}",
            after.saturation
        );
        assert!(!res.added_arcs.is_empty());
        // the witness schedule colors within 1 register
        assert!(res.registers.values().all(|&i| i < 1));
    }

    #[test]
    fn reduce_ilp_noop_when_budget_met() {
        let mut d = two_loads();
        let res = ReduceIlp::new().reduce(&mut d, RegType::FLOAT, 2).unwrap();
        // RS = 2 ≤ 2: the intLP may still add arcs consistent with its
        // witness, but the saturation must remain within budget and the
        // critical path must not grow beyond the witness makespan.
        let after = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(after.saturation <= 2);
        assert!(res.cp_after <= res.makespan);
    }

    #[test]
    fn reduce_ilp_infeasible_reports_spill() {
        // Three values all forced simultaneously alive: budget 1 cannot work.
        let mut b = DdgBuilder::new(Target::superscalar());
        let v1 = b.op("v1", OpClass::Load, Some(RegType::FLOAT));
        let v2 = b.op("v2", OpClass::Load, Some(RegType::FLOAT));
        let add = b.op("add", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st = b.op("st", OpClass::Store, None);
        b.flow(v1, add, 4, RegType::FLOAT);
        b.flow(v2, add, 4, RegType::FLOAT);
        b.flow(add, st, 3, RegType::FLOAT);
        let mut d = b.finish();
        // v1, v2 both read by add: both live until the add — 1 register is
        // impossible.
        let err = ReduceIlp::new()
            .reduce(&mut d, RegType::FLOAT, 1)
            .unwrap_err();
        assert_eq!(err, ReduceIlpError::SpillUnavoidable);
    }
}
