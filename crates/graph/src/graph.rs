//! Arena-based directed multigraph with integer edge latencies.
//!
//! Nodes carry an arbitrary payload `N`; edges carry an `i64` latency (the
//! paper's `δ(e)`), which may be negative for VLIW/EPIC serialization arcs.
//! Edges are removed by tombstoning so that `EdgeId`s stay stable: the
//! register-saturation passes routinely record edge ids while mutating the
//! graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in a [`DiGraph`]. Stable for the lifetime of the graph
/// (nodes are never removed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of an edge in a [`DiGraph`]. Stable; removed edges leave tombstones.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The node id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The edge id as a `usize`, for indexing side tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct EdgeRecord {
    src: NodeId,
    dst: NodeId,
    latency: i64,
    alive: bool,
}

/// A directed multigraph with node payloads and `i64` edge latencies.
///
/// Parallel edges are allowed (the DDG model produces them: a flow edge and a
/// serial edge may connect the same pair); self-loops are rejected because
/// every structure in the framework is a DAG or must be checked to be one.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DiGraph<N> {
    nodes: Vec<N>,
    edges: Vec<EdgeRecord>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    live_edges: usize,
}

impl<N> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            live_edges: 0,
        }
    }

    /// Creates an empty graph with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
            live_edges: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-tombstoned) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, payload: N) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(payload);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `src -> dst` with the given latency.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range node ids.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, latency: i64) -> EdgeId {
        assert!(src != dst, "self-loop {:?} -> {:?} rejected", src, dst);
        assert!(src.index() < self.nodes.len(), "src out of range");
        assert!(dst.index() < self.nodes.len(), "dst out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(EdgeRecord {
            src,
            dst,
            latency,
            alive: true,
        });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        self.live_edges += 1;
        id
    }

    /// Tombstones an edge. Its id remains valid but the edge no longer
    /// participates in traversals. Idempotent.
    pub fn remove_edge(&mut self, e: EdgeId) {
        let rec = &mut self.edges[e.index()];
        if rec.alive {
            rec.alive = false;
            self.live_edges -= 1;
        }
    }

    /// Whether the edge is live.
    #[inline]
    pub fn edge_alive(&self, e: EdgeId) -> bool {
        self.edges[e.index()].alive
    }

    /// Source node of an edge (valid even for tombstoned edges).
    #[inline]
    pub fn src(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].src
    }

    /// Destination node of an edge (valid even for tombstoned edges).
    #[inline]
    pub fn dst(&self, e: EdgeId) -> NodeId {
        self.edges[e.index()].dst
    }

    /// Latency `δ(e)` of an edge.
    #[inline]
    pub fn latency(&self, e: EdgeId) -> i64 {
        self.edges[e.index()].latency
    }

    /// Overwrites the latency of an edge.
    pub fn set_latency(&mut self, e: EdgeId, latency: i64) {
        self.edges[e.index()].latency = latency;
    }

    /// Immutable access to a node payload.
    #[inline]
    pub fn node(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable access to a node payload.
    #[inline]
    pub fn node_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all live edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Live out-edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[n.index()]
            .iter()
            .copied()
            .filter(move |&e| self.edges[e.index()].alive)
    }

    /// Live in-edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[n.index()]
            .iter()
            .copied()
            .filter(move |&e| self.edges[e.index()].alive)
    }

    /// Successor nodes of `n` (may repeat under parallel edges).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(move |e| self.dst(e))
    }

    /// Predecessor nodes of `n` (may repeat under parallel edges).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(move |e| self.src(e))
    }

    /// Out-degree counting only live edges.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_edges(n).count()
    }

    /// In-degree counting only live edges.
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_edges(n).count()
    }

    /// Returns some live edge `src -> dst` if one exists.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src).find(|&e| self.dst(e) == dst)
    }

    /// Returns the live edge `src -> dst` of maximum latency, if any.
    pub fn find_max_latency_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src)
            .filter(|&e| self.dst(e) == dst)
            .max_by_key(|&e| self.latency(e))
    }

    /// Nodes with no live in-edges.
    pub fn sources(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes with no live out-edges.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Sum of the latencies of all live edges, clamped at 0 from below per
    /// edge. This is the paper's worst-case total schedule time
    /// `T = Σ_e δ(e)` used to bound intLP variable domains (negative-latency
    /// VLIW arcs do not shrink the horizon).
    pub fn total_latency(&self) -> i64 {
        self.edge_ids().map(|e| self.latency(e).max(0)).sum()
    }

    /// Clones `other` into `self`, reusing `self`'s allocations (top-level
    /// vectors, adjacency rows, and payload buffers via `clone_from`). The
    /// killed-graph construction of the saturation engine rebuilds a scratch
    /// copy of the same DDG dozens of times per analysis; with this method
    /// the steady state performs no heap allocation.
    pub fn clone_from_graph(&mut self, other: &DiGraph<N>)
    where
        N: Clone,
    {
        self.nodes.clone_from(&other.nodes);
        self.edges.clone_from(&other.edges);
        self.out_adj.clone_from(&other.out_adj);
        self.in_adj.clone_from(&other.in_adj);
        self.live_edges = other.live_edges;
    }

    /// Maps node payloads, preserving ids and edges.
    pub fn map_nodes<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> DiGraph<M> {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId(i as u32), n))
                .collect(),
            edges: self.edges.clone(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
            live_edges: self.live_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let d = g.add_node(3);
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_count() {
        let (g, _) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn adjacency() {
        let (g, [a, b, c, d]) = diamond();
        let succ_a: Vec<_> = g.successors(a).collect();
        assert_eq!(succ_a, vec![b, c]);
        let pred_d: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred_d, vec![b, c]);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.in_degree(a), 0);
    }

    #[test]
    fn tombstone_removal() {
        let (mut g, [a, b, _, _]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.edge_alive(e));
        assert!(g.find_edge(a, b).is_none());
        // idempotent
        g.remove_edge(e);
        assert_eq!(g.edge_count(), 3);
        // endpoints still queryable on the tombstone
        assert_eq!(g.src(e), a);
        assert_eq!(g.dst(e), b);
    }

    #[test]
    fn parallel_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 5);
        assert_eq!(g.edge_count(), 2);
        let e = g.find_max_latency_edge(a, b).unwrap();
        assert_eq!(g.latency(e), 5);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, 0);
    }

    #[test]
    fn sources_and_sinks() {
        let (g, [a, _, _, d]) = diamond();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
    }

    #[test]
    fn total_latency_clamps_negative() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 3);
        g.add_edge(a, b, -7);
        assert_eq!(g.total_latency(), 3);
    }

    #[test]
    fn map_nodes_preserves_structure() {
        let (g, [a, _, _, d]) = diamond();
        let h = g.map_nodes(|_, &v| v * 10);
        assert_eq!(*h.node(a), 0);
        assert_eq!(*h.node(d), 30);
        assert_eq!(h.edge_count(), 4);
    }

    #[test]
    fn clone_from_graph_matches_clone() {
        let (g, [a, b, _, d]) = diamond();
        let mut h: DiGraph<u32> = DiGraph::new();
        h.add_node(99); // pre-existing state must be fully replaced
        h.clone_from_graph(&g);
        assert_eq!(h.node_count(), g.node_count());
        assert_eq!(h.edge_count(), g.edge_count());
        assert_eq!(*h.node(a), 0);
        let succ: Vec<_> = h.successors(a).collect();
        assert_eq!(succ, vec![b, NodeId(2)]);
        // mutations on the copy don't leak back, and a re-clone resets them
        let e = h.find_edge(a, b).unwrap();
        h.remove_edge(e);
        h.add_edge(a, d, 9);
        h.clone_from_graph(&g);
        assert_eq!(h.edge_count(), 4);
        assert!(h.find_edge(a, b).is_some());
        assert!(h.find_edge(a, d).is_none());
    }

    #[test]
    fn set_latency_roundtrip() {
        let (mut g, [a, b, _, _]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        g.set_latency(e, 42);
        assert_eq!(g.latency(e), 42);
    }
}
