//! Fixed-capacity bitsets used as transitive-closure rows.
//!
//! A `BitSet` is a plain `Vec<u64>`; all operations are word-parallel, which
//! is what makes the `O(n·m/64)` closure computation cheap even for the
//! larger random DAGs of the experiment sweeps.

use serde::{Deserialize, Serialize};

/// A fixed-capacity set of `usize` indices backed by 64-bit words.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity (exclusive upper bound on member indices).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`. Panics if `i` is out of capacity.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len, "bit {} out of capacity {}", i, self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`. Both sets must share capacity.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// `self &= other`. Both sets must share capacity.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self -= other` (set difference).
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Whether the intersection with `other` is nonempty.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears all members, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Re-dimensions the set to capacity `len` and clears it, reusing the
    /// word buffer. The allocation-free path of the batch analysis engine:
    /// a pooled row shrinks/grows without touching the heap once its buffer
    /// has reached the high-water mark.
    pub fn reset(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// A recycling pool of [`BitSet`]s.
///
/// Scratch-aware algorithms ([`crate::closure::TransitiveClosure::build_into`])
/// return rows here when a smaller graph needs fewer of them and draw rows
/// back out when a larger graph arrives, so row buffers are allocated only
/// until the pool reaches the corpus high-water mark.
#[derive(Clone, Debug, Default)]
pub struct BitSetPool {
    free: Vec<BitSet>,
}

impl BitSetPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared set of capacity `len` from the pool (or allocates one
    /// if the pool is empty).
    pub fn acquire(&mut self, len: usize) -> BitSet {
        let mut s = self.free.pop().unwrap_or_else(|| BitSet::new(0));
        s.reset(len);
        s
    }

    /// Returns a set to the pool for later reuse.
    pub fn release(&mut self, s: BitSet) {
        self.free.push(s);
    }

    /// Number of sets currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// Iterator over the members of a [`BitSet`], ascending.
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let tz = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + tz)
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element (+1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iter_ascending() {
        let mut s = BitSet::new(200);
        for i in [5usize, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![5, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn union_intersect_difference() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(50);
        b.insert(50);
        b.insert(99);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 50, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![50]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert!(a.intersects(&b));
        assert!(!i.intersects(&d));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(3);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 10);
    }

    #[test]
    fn from_iter_sizes_to_max() {
        let s: BitSet = [3usize, 7, 7, 1].into_iter().collect();
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn reset_redimensions_and_clears() {
        let mut s = BitSet::new(130);
        s.insert(129);
        s.reset(65);
        assert_eq!(s.capacity(), 65);
        assert!(s.is_empty());
        s.insert(64);
        assert!(s.contains(64));
        s.reset(200);
        assert!(s.is_empty());
        s.insert(199);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn pool_recycles_sets() {
        let mut pool = BitSetPool::new();
        let mut a = pool.acquire(100);
        a.insert(7);
        pool.release(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.acquire(50);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(b.capacity(), 50);
        assert!(b.is_empty(), "recycled set must come back cleared");
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    proptest! {
        #[test]
        fn matches_reference_set(items in proptest::collection::vec(0usize..300, 0..80)) {
            let mut s = BitSet::new(300);
            let mut reference = std::collections::BTreeSet::new();
            for &i in &items {
                s.insert(i);
                reference.insert(i);
            }
            prop_assert_eq!(s.count(), reference.len());
            prop_assert_eq!(s.iter().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
            for i in 0..300 {
                prop_assert_eq!(s.contains(i), reference.contains(&i));
            }
        }

        #[test]
        fn union_is_commutative(
            xs in proptest::collection::vec(0usize..128, 0..40),
            ys in proptest::collection::vec(0usize..128, 0..40),
        ) {
            let mut a = BitSet::new(128);
            let mut b = BitSet::new(128);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
