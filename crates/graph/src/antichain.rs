//! Maximum antichains and minimum chain covers of finite posets (Dilworth).
//!
//! The register saturation of a DAG under a fixed killing function is the
//! size of a maximum antichain of the *disjoint-value DAG* (Touati \[14\]).
//! Dilworth's theorem reduces this to bipartite matching: for a poset on
//! `n` elements, `max antichain = n − max matching` on the comparability
//! bipartite graph, and the antichain itself falls out of the König minimum
//! vertex cover.
//!
//! The order is supplied as a closure `less(u, v)` which **must be a strict
//! partial order** (irreflexive, transitive); callers pass reachability in a
//! transitively closed DAG.

use crate::graph::NodeId;
use crate::matching::{hopcroft_karp_into, BipartiteGraph, MatchingScratch};

/// Output of [`max_antichain`]: a witness antichain and a matching-derived
/// minimum chain cover (both optimal, with `antichain.len() == chains.len()`
/// by Dilworth's theorem).
#[derive(Clone, Debug)]
pub struct AntichainResult {
    /// A maximum antichain: pairwise incomparable elements.
    pub antichain: Vec<NodeId>,
    /// A minimum chain cover: disjoint chains covering every element, each
    /// listed in increasing order.
    pub chains: Vec<Vec<NodeId>>,
}

impl AntichainResult {
    /// Size of the maximum antichain (== number of chains).
    pub fn width(&self) -> usize {
        self.antichain.len()
    }
}

/// Computes a maximum antichain and minimum chain cover of the poset induced
/// by `less` on `elements`.
///
/// `less(a, b)` must hold iff `a` strictly precedes `b`; it must be
/// irreflexive and transitive. Complexity `O(k² + E√k)` for `k` elements.
///
/// ```
/// use rs_graph::{antichain::max_antichain, NodeId};
///
/// // the divisibility poset on {1, 2, 3, 4}: width 2 (e.g. {2, 3})
/// let els: Vec<NodeId> = (1..=4).map(NodeId).collect();
/// let result = max_antichain(&els, |a, b| a.0 != b.0 && b.0 % a.0 == 0);
/// assert_eq!(result.width(), 2);
/// assert_eq!(result.chains.len(), 2); // Dilworth: chain cover of the same size
/// ```
pub fn max_antichain(
    elements: &[NodeId],
    less: impl FnMut(NodeId, NodeId) -> bool,
) -> AntichainResult {
    let mut scratch = AntichainScratch::new();
    let mut antichain = Vec::new();
    max_antichain_into(elements, less, &mut scratch, &mut antichain);
    let k = elements.len();
    let m = &scratch.matching;

    // Chains: follow pair_left pointers from chain heads (unmatched on the
    // right, i.e. nothing precedes them in the cover).
    let mut chains = Vec::with_capacity(k - m.size);
    for start in 0..k {
        if m.pair_right[start].is_some() {
            continue; // not a chain head
        }
        let mut chain = vec![elements[start]];
        let mut cur = start;
        while let Some(next) = m.pair_left[cur] {
            chain.push(elements[next]);
            cur = next;
        }
        chains.push(chain);
    }
    debug_assert_eq!(chains.len(), k - m.size, "chain cover count mismatch");

    AntichainResult { antichain, chains }
}

/// Reusable working storage for [`max_antichain_into`]: the comparability
/// bipartite graph and the matching buffers.
#[derive(Clone, Debug, Default)]
pub struct AntichainScratch {
    bg: BipartiteGraph,
    /// The matching of the last call (exposed so [`max_antichain`] can derive
    /// the chain cover from it).
    pub matching: MatchingScratch,
}

impl AntichainScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Allocation-reusing core of [`max_antichain`]: computes a maximum
/// antichain into `antichain` and returns its width. Witness and width are
/// identical to [`max_antichain`] (which delegates here); only the chain
/// cover is skipped — hot-path callers of the saturation analysis never
/// need it.
pub fn max_antichain_into(
    elements: &[NodeId],
    mut less: impl FnMut(NodeId, NodeId) -> bool,
    scratch: &mut AntichainScratch,
    antichain: &mut Vec<NodeId>,
) -> usize {
    let k = elements.len();
    scratch.bg.reset(k, k);
    for i in 0..k {
        for j in 0..k {
            if i != j && less(elements[i], elements[j]) {
                scratch.bg.add_edge(i, j);
            }
        }
    }
    hopcroft_karp_into(&scratch.bg, &mut scratch.matching);
    let m = &scratch.matching;

    // Antichain = elements uncovered on both sides (König).
    antichain.clear();
    antichain.extend(
        (0..k)
            .filter(|&i| !m.cover_left[i] && !m.cover_right[i])
            .map(|i| elements[i]),
    );
    debug_assert_eq!(antichain.len(), k - m.size, "Dilworth count mismatch");
    antichain.len()
}

/// Convenience wrapper returning only the minimum chain cover.
pub fn min_chain_cover(
    elements: &[NodeId],
    less: impl FnMut(NodeId, NodeId) -> bool,
) -> Vec<Vec<NodeId>> {
    max_antichain(elements, less).chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn total_order_has_width_one() {
        let els = ids(&[0, 1, 2, 3]);
        let r = max_antichain(&els, |a, b| a.0 < b.0);
        assert_eq!(r.width(), 1);
        assert_eq!(r.chains.len(), 1);
        assert_eq!(r.chains[0], els);
    }

    #[test]
    fn empty_order_is_one_big_antichain() {
        let els = ids(&[0, 1, 2, 3, 4]);
        let r = max_antichain(&els, |_, _| false);
        assert_eq!(r.width(), 5);
        assert_eq!(r.chains.len(), 5);
    }

    #[test]
    fn two_by_two_grid() {
        // poset: 0 < 1, 0 < 2, 1 < 3, 2 < 3 (and 0 < 3 by transitivity)
        let els = ids(&[0, 1, 2, 3]);
        let pairs = [(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)];
        let r = max_antichain(&els, |a, b| pairs.contains(&(a.0, b.0)));
        assert_eq!(r.width(), 2);
        let set: Vec<u32> = r.antichain.iter().map(|n| n.0).collect();
        assert!(
            set == vec![1, 2],
            "expected the middle layer, got {:?}",
            set
        );
    }

    #[test]
    fn empty_elements() {
        let r = max_antichain(&[], |_, _| true);
        assert_eq!(r.width(), 0);
        assert!(r.chains.is_empty());
    }

    #[test]
    fn chains_partition_elements() {
        let els = ids(&[0, 1, 2, 3, 4, 5]);
        // two independent chains: 0<1<2 and 3<4, plus isolated 5
        let pairs = [(0, 1), (1, 2), (0, 2), (3, 4)];
        let r = max_antichain(&els, |a, b| pairs.contains(&(a.0, b.0)));
        assert_eq!(r.width(), 3);
        let mut all: Vec<u32> = r.chains.iter().flatten().map(|n| n.0).collect();
        all.sort();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        // each chain is increasing in the order
        for chain in &r.chains {
            for w in chain.windows(2) {
                assert!(pairs.contains(&(w[0].0, w[1].0)));
            }
        }
    }

    /// Brute-force max antichain by subset enumeration.
    fn brute_width(els: &[NodeId], less: &dyn Fn(NodeId, NodeId) -> bool) -> usize {
        let k = els.len();
        let mut best = 0;
        for mask in 0u32..(1 << k) {
            let members: Vec<NodeId> = (0..k)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| els[i])
                .collect();
            let ok = members.iter().all(|&a| {
                members
                    .iter()
                    .all(|&b| a == b || (!less(a, b) && !less(b, a)))
            });
            if ok {
                best = best.max(members.len());
            }
        }
        best
    }

    proptest! {
        #[test]
        fn agrees_with_brute_force(edges in proptest::collection::vec((0u32..8, 0u32..8), 0..20)) {
            // build a random strict order from a random DAG (low -> high) and
            // transitively close it by Floyd-Warshall
            let mut rel = [[false; 8]; 8];
            for (u, v) in edges {
                if u < v {
                    rel[u as usize][v as usize] = true;
                }
            }
            for m in 0..8 {
                for a in 0..8 {
                    for b in 0..8 {
                        if rel[a][m] && rel[m][b] {
                            rel[a][b] = true;
                        }
                    }
                }
            }
            let els = ids(&[0, 1, 2, 3, 4, 5, 6, 7]);
            let less = |a: NodeId, b: NodeId| rel[a.index()][b.index()];
            let r = max_antichain(&els, less);
            // witness is a valid antichain
            for &a in &r.antichain {
                for &b in &r.antichain {
                    prop_assert!(a == b || (!less(a, b) && !less(b, a)));
                }
            }
            // optimal
            prop_assert_eq!(r.width(), brute_width(&els, &less));
            // Dilworth: chains count equals width, chains partition
            prop_assert_eq!(r.chains.len(), r.width());
            let mut all: Vec<u32> = r.chains.iter().flatten().map(|n| n.0).collect();
            all.sort();
            prop_assert_eq!(all, (0u32..8).collect::<Vec<_>>());
        }
    }
}
