//! Longest paths on DAGs.
//!
//! In the scheduling model of the paper, a valid schedule satisfies
//! `σ_v − σ_u ≥ δ(e)` for every edge, so the *longest* path `lp(u, v)` is the
//! minimum possible separation between the issue dates of `u` and `v`. All
//! routines accept negative latencies (VLIW serialization arcs).
//!
//! All functions panic if the graph is cyclic; callers are expected to have
//! validated acyclicity (the DDG invariant).

use crate::graph::{DiGraph, NodeId};
use crate::topo::topo_sort;

/// Longest path lengths from `src` to every node (`None` if unreachable;
/// `Some(0)` for `src` itself).
pub fn longest_from<N>(g: &DiGraph<N>, src: NodeId) -> Vec<Option<i64>> {
    let order = topo_sort(g).expect("longest_from requires a DAG");
    let mut dist: Vec<Option<i64>> = vec![None; g.node_count()];
    dist[src.index()] = Some(0);
    for &u in &order {
        let Some(du) = dist[u.index()] else { continue };
        for e in g.out_edges(u) {
            let v = g.dst(e);
            let cand = du + g.latency(e);
            if dist[v.index()].is_none_or(|dv| cand > dv) {
                dist[v.index()] = Some(cand);
            }
        }
    }
    dist
}

/// Longest path lengths from every node to `dst`.
pub fn longest_to<N>(g: &DiGraph<N>, dst: NodeId) -> Vec<Option<i64>> {
    let order = topo_sort(g).expect("longest_to requires a DAG");
    let mut dist: Vec<Option<i64>> = vec![None; g.node_count()];
    dist[dst.index()] = Some(0);
    for &u in order.iter().rev() {
        if u == dst {
            continue;
        }
        let mut best: Option<i64> = None;
        for e in g.out_edges(u) {
            let v = g.dst(e);
            if let Some(dv) = dist[v.index()] {
                let cand = dv + g.latency(e);
                if best.is_none_or(|b| cand > b) {
                    best = Some(cand);
                }
            }
        }
        if u != dst {
            dist[u.index()] = best;
        }
    }
    dist
}

/// Dense all-pairs longest-path table for a DAG.
///
/// Memory is `O(n²)`; time is `O(n·m)`. DDGs in this framework are loop
/// bodies (tens of nodes) so a dense table is the right trade-off — it is
/// queried `O(n²)` times per saturation analysis.
#[derive(Clone, Debug)]
pub struct LongestPaths {
    n: usize,
    // row-major; i64::MIN encodes "no path"
    table: Vec<i64>,
}

impl Default for LongestPaths {
    fn default() -> Self {
        Self::empty()
    }
}

impl LongestPaths {
    /// Builds the table.
    pub fn new<N>(g: &DiGraph<N>) -> Self {
        let order = topo_sort(g).expect("LongestPaths requires a DAG");
        let mut lp = Self::empty();
        lp.compute_into(g, &order);
        lp
    }

    /// An empty table, ready to be (re)filled by [`LongestPaths::compute_into`].
    pub fn empty() -> Self {
        LongestPaths {
            n: 0,
            table: Vec::new(),
        }
    }

    /// Recomputes the table for `g` in place, reusing the table allocation.
    /// `order` must be a topological order of `g` (e.g. from
    /// [`crate::topo::topo_sort_into`]); sharing it lets a caller pay for one
    /// topological sort per graph instead of one per table.
    pub fn compute_into<N>(&mut self, g: &DiGraph<N>, order: &[NodeId]) {
        let n = g.node_count();
        debug_assert_eq!(order.len(), n, "order must cover the graph");
        self.n = n;
        self.table.clear();
        self.table.resize(n * n, i64::MIN);
        let table = &mut self.table[..];
        // Process nodes in reverse topological order: lp(u, v) =
        // max over out-edges (u,w) of δ + lp(w, v), and lp(u, u) = 0.
        for &u in order.iter().rev() {
            let ui = u.index();
            table[ui * n + ui] = 0;
            for e in g.out_edges(u) {
                let wi = g.dst(e).index();
                let lat = g.latency(e);
                // Split borrows: row `u` mutable, row `w` shared (ui != wi
                // because self-loops are rejected). Whole-row slices keep the
                // inner loop free of index arithmetic so it vectorizes.
                let (urow, wrow) = if ui < wi {
                    let (lo, hi) = table.split_at_mut(wi * n);
                    (&mut lo[ui * n..ui * n + n], &hi[..n])
                } else {
                    let (lo, hi) = table.split_at_mut(ui * n);
                    (&mut hi[..n], &lo[wi * n..wi * n + n])
                };
                for (cell, &via) in urow.iter_mut().zip(wrow) {
                    if via != i64::MIN {
                        let cand = via + lat;
                        if *cell == i64::MIN || cand > *cell {
                            *cell = cand;
                        }
                    }
                }
            }
        }
    }

    /// `lp(u, v)`: longest path length, `None` if no path. `lp(u, u) == 0`.
    #[inline]
    pub fn lp(&self, u: NodeId, v: NodeId) -> Option<i64> {
        let x = self.table[u.index() * self.n + v.index()];
        (x != i64::MIN).then_some(x)
    }

    /// Whether a (possibly empty) path `u ⇝ v` exists.
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.table[u.index() * self.n + v.index()] != i64::MIN
    }

    /// Number of nodes the table covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Length of the longest path in the DAG (0 for an empty or edgeless graph).
pub fn critical_path<N>(g: &DiGraph<N>) -> i64 {
    let order = topo_sort(g).expect("critical_path requires a DAG");
    let mut dist: Vec<i64> = vec![0; g.node_count()];
    let mut best = 0i64;
    for &u in &order {
        let du = dist[u.index()];
        for e in g.out_edges(u) {
            let v = g.dst(e);
            let cand = du + g.latency(e);
            if cand > dist[v.index()] {
                dist[v.index()] = cand;
                if cand > best {
                    best = cand;
                }
            }
        }
    }
    best
}

/// As-soon-as-possible issue dates: `asap(u) = max path length into u`,
/// i.e. the earliest valid `σ_u` starting all sources at 0.
pub fn asap<N>(g: &DiGraph<N>) -> Vec<i64> {
    let order = topo_sort(g).expect("asap requires a DAG");
    let mut dist = vec![0i64; g.node_count()];
    for &u in &order {
        for e in g.out_edges(u) {
            let v = g.dst(e);
            dist[v.index()] = dist[v.index()].max(dist[u.index()] + g.latency(e));
        }
    }
    dist
}

/// As-late-as-possible issue dates against horizon `t`:
/// `alap(u) = t − max path length from u`.
pub fn alap<N>(g: &DiGraph<N>, horizon: i64) -> Vec<i64> {
    let order = topo_sort(g).expect("alap requires a DAG");
    let mut from = vec![0i64; g.node_count()];
    for &u in order.iter().rev() {
        for e in g.out_edges(u) {
            let v = g.dst(e);
            from[u.index()] = from[u.index()].max(from[v.index()] + g.latency(e));
        }
    }
    from.iter().map(|&f| horizon - f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_and_shortcut() -> (DiGraph<()>, [NodeId; 4]) {
        // a -1-> b -2-> c -3-> d, plus shortcut a -4-> d
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 2);
        g.add_edge(c, d, 3);
        g.add_edge(a, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn longest_from_picks_longer_route() {
        let (g, [a, b, c, d]) = chain_and_shortcut();
        let lp = longest_from(&g, a);
        assert_eq!(lp[a.index()], Some(0));
        assert_eq!(lp[b.index()], Some(1));
        assert_eq!(lp[c.index()], Some(3));
        assert_eq!(lp[d.index()], Some(6)); // 1+2+3 beats the 4 shortcut
    }

    #[test]
    fn longest_to_mirrors() {
        let (g, [a, b, _, d]) = chain_and_shortcut();
        let lp = longest_to(&g, d);
        assert_eq!(lp[a.index()], Some(6));
        assert_eq!(lp[b.index()], Some(5));
        assert_eq!(lp[d.index()], Some(0));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1);
        let lp = longest_from(&g, a);
        assert_eq!(lp[c.index()], None);
        let lpt = longest_to(&g, b);
        assert_eq!(lpt[c.index()], None);
    }

    #[test]
    fn all_pairs_consistent_with_single_source() {
        let (g, [a, b, c, d]) = chain_and_shortcut();
        let ap = LongestPaths::new(&g);
        for &u in &[a, b, c, d] {
            let single = longest_from(&g, u);
            for &v in &[a, b, c, d] {
                assert_eq!(ap.lp(u, v), single[v.index()], "lp({:?},{:?})", u, v);
            }
        }
        assert!(ap.reaches(a, d));
        assert!(!ap.reaches(d, a));
        assert_eq!(ap.len(), 4);
    }

    #[test]
    fn negative_latency_paths() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, -2);
        g.add_edge(b, c, 5);
        g.add_edge(a, c, 1);
        let ap = LongestPaths::new(&g);
        assert_eq!(ap.lp(a, c), Some(3)); // -2+5 beats 1
        assert_eq!(ap.lp(a, b), Some(-2));
    }

    #[test]
    fn critical_path_and_asap_alap() {
        let (g, [a, b, c, d]) = chain_and_shortcut();
        assert_eq!(critical_path(&g), 6);
        let asap_v = asap(&g);
        assert_eq!(asap_v[a.index()], 0);
        assert_eq!(asap_v[d.index()], 6);
        let alap_v = alap(&g, 10);
        assert_eq!(alap_v[d.index()], 10);
        assert_eq!(alap_v[a.index()], 4);
        assert_eq!(alap_v[b.index()], 5);
        assert_eq!(alap_v[c.index()], 7);
        // asap ≤ alap for any horizon ≥ critical path
        for n in g.node_ids() {
            assert!(asap_v[n.index()] <= alap_v[n.index()]);
        }
    }

    #[test]
    fn parallel_edges_take_max() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 9);
        let ap = LongestPaths::new(&g);
        assert_eq!(ap.lp(a, b), Some(9));
    }

    #[test]
    fn compute_into_reuses_table_across_graph_sizes() {
        let (g, [a, _, _, d]) = chain_and_shortcut();
        let order = topo_sort(&g).unwrap();
        let mut lp = LongestPaths::empty();
        lp.compute_into(&g, &order);
        assert_eq!(lp.lp(a, d), Some(6));
        // refill from a smaller graph: stale cells must not leak through
        let mut g2 = DiGraph::new();
        let x = g2.add_node(());
        let y = g2.add_node(());
        g2.add_edge(x, y, 7);
        let order2 = topo_sort(&g2).unwrap();
        lp.compute_into(&g2, &order2);
        assert_eq!(lp.len(), 2);
        assert_eq!(lp.lp(x, y), Some(7));
        assert_eq!(lp.lp(y, x), None);
        // and back to the larger one: identical to a fresh build
        lp.compute_into(&g, &order);
        let fresh = LongestPaths::new(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                assert_eq!(lp.lp(u, v), fresh.lp(u, v));
            }
        }
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<()> = DiGraph::new();
        assert_eq!(critical_path(&g), 0);
        let ap = LongestPaths::new(&g);
        assert!(ap.is_empty());
    }
}
