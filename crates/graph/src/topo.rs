//! Topological sorting and cycle detection.
//!
//! The reduction pass (Section 4 of the paper) can introduce circuits on
//! VLIW/EPIC targets; [`cycle_witness`] extracts an explicit cycle so the
//! caller can build an ordering cut against it.

use crate::graph::{DiGraph, NodeId};

/// A cycle was found while topologically sorting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// Nodes on one witness cycle, in order (`cycle[i] -> cycle[i+1]`,
    /// wrapping around).
    pub cycle: Vec<NodeId>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a cycle through {:?}", self.cycle)
    }
}

impl std::error::Error for CycleError {}

/// Kahn's algorithm. Returns node ids in a topological order, or a witness
/// cycle if the graph is cyclic.
pub fn topo_sort<N>(g: &DiGraph<N>) -> Result<Vec<NodeId>, CycleError> {
    let mut indeg = Vec::new();
    let mut order = Vec::new();
    topo_sort_into(g, &mut indeg, &mut order)?;
    Ok(order)
}

/// Allocation-reusing variant of [`topo_sort`]: fills `order` with a
/// topological order (identical to the one `topo_sort` returns), using
/// `indeg` as working storage. In the steady state of a batch run neither
/// buffer reallocates. The cyclic-graph error path still allocates its
/// witness — acceptable, since callers treat it as fatal or as a rejected
/// candidate.
pub fn topo_sort_into<N>(
    g: &DiGraph<N>,
    indeg: &mut Vec<usize>,
    order: &mut Vec<NodeId>,
) -> Result<(), CycleError> {
    let n = g.node_count();
    indeg.clear();
    indeg.resize(n, 0);
    for e in g.edge_ids() {
        indeg[g.dst(e).index()] += 1;
    }
    // `order` doubles as Kahn's FIFO work queue: popped-off prefix = emitted
    // order.
    order.clear();
    order.reserve(n);
    order.extend(g.node_ids().filter(|nid| indeg[nid.index()] == 0));
    let mut head = 0;
    while head < order.len() {
        let u = order[head];
        head += 1;
        for e in g.out_edges(u) {
            let v = g.dst(e);
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                order.push(v);
            }
        }
    }
    if order.len() == n {
        Ok(())
    } else {
        Err(CycleError {
            cycle: find_cycle(g).expect("Kahn detected a cycle but DFS found none"),
        })
    }
}

/// Whether the graph is acyclic.
pub fn is_acyclic<N>(g: &DiGraph<N>) -> bool {
    topo_sort(g).is_ok()
}

/// Returns one explicit cycle if the graph is cyclic.
pub fn cycle_witness<N>(g: &DiGraph<N>) -> Option<Vec<NodeId>> {
    find_cycle(g)
}

fn find_cycle<N>(g: &DiGraph<N>) -> Option<Vec<NodeId>> {
    // Iterative colored DFS with an explicit stack to survive deep graphs.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = g.node_count();
    let mut color = vec![WHITE; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];

    for start in g.node_ids() {
        if color[start.index()] != WHITE {
            continue;
        }
        // Stack of (node, out-edge iterator position).
        let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
        color[start.index()] = GRAY;
        let succ: Vec<NodeId> = g.successors(start).collect();
        stack.push((start, succ, 0));
        while let Some((u, succ, pos)) = stack.last_mut() {
            if *pos < succ.len() {
                let v = succ[*pos];
                *pos += 1;
                match color[v.index()] {
                    WHITE => {
                        color[v.index()] = GRAY;
                        parent[v.index()] = Some(*u);
                        let vs: Vec<NodeId> = g.successors(v).collect();
                        stack.push((v, vs, 0));
                    }
                    GRAY => {
                        // Found a back edge u -> v: walk parents from u to v.
                        let mut cycle = vec![v];
                        let mut cur = *u;
                        while cur != v {
                            cycle.push(cur);
                            cur = parent[cur.index()].expect("broken parent chain");
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u.index()] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        g.add_edge(a, c, 0);
        let order = topo_sort(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 3];
            for (i, n) in order.iter().enumerate() {
                p[n.index()] = i;
            }
            p
        };
        assert!(pos[a.index()] < pos[b.index()]);
        assert!(pos[b.index()] < pos[c.index()]);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn detects_cycle_with_witness() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        g.add_edge(c, a, 0);
        let err = topo_sort(&g).unwrap_err();
        assert_eq!(err.cycle.len(), 3);
        // verify witness is a real cycle
        for i in 0..err.cycle.len() {
            let u = err.cycle[i];
            let v = err.cycle[(i + 1) % err.cycle.len()];
            assert!(g.find_edge(u, v).is_some(), "missing edge {:?}->{:?}", u, v);
        }
        assert!(!is_acyclic(&g));
        assert!(cycle_witness(&g).is_some());
    }

    #[test]
    fn two_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, a, -1);
        let w = cycle_witness(&g).unwrap();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn removal_breaks_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        let back = g.add_edge(b, a, 0);
        assert!(!is_acyclic(&g));
        g.remove_edge(back);
        assert!(is_acyclic(&g));
    }

    #[test]
    fn empty_and_singleton() {
        let g: DiGraph<()> = DiGraph::new();
        assert!(topo_sort(&g).unwrap().is_empty());
        let mut g = DiGraph::new();
        g.add_node(());
        assert_eq!(topo_sort(&g).unwrap().len(), 1);
    }

    #[test]
    fn topo_sort_into_reuses_buffers_and_matches() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        let mut indeg = Vec::new();
        let mut order = Vec::new();
        topo_sort_into(&g, &mut indeg, &mut order).unwrap();
        assert_eq!(order, topo_sort(&g).unwrap());
        // reuse on a smaller graph: buffers shrink logically, stay valid
        let mut g2 = DiGraph::new();
        let x = g2.add_node(());
        topo_sort_into(&g2, &mut indeg, &mut order).unwrap();
        assert_eq!(order, vec![x]);
    }

    #[test]
    fn disconnected_components() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(c, d, 0);
        assert_eq!(topo_sort(&g).unwrap().len(), 4);
    }
}
