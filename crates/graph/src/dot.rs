//! Graphviz DOT export, for debugging DDGs and documenting examples.

use crate::graph::DiGraph;
use std::fmt::Write;

/// Renders the graph in Graphviz DOT syntax. Node labels come from
/// `label(payload)`; edge labels are latencies. `highlight` edges (by id
/// index) are drawn bold red — used to visualize added serialization arcs.
pub fn to_dot<N>(
    g: &DiGraph<N>,
    name: &str,
    mut label: impl FnMut(&N) -> String,
    highlight: &[usize],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for n in g.node_ids() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\"];",
            n.index(),
            escape(&label(g.node(n)))
        );
    }
    for e in g.edge_ids() {
        let style = if highlight.contains(&e.index()) {
            " color=red penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"{}];",
            g.src(e).index(),
            g.dst(e).index(),
            g.latency(e),
            style
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node("load");
        let b = g.add_node("add");
        let e = g.add_edge(a, b, 3);
        let dot = to_dot(&g, "test", |s| s.to_string(), &[e.index()]);
        assert!(dot.contains("digraph test"));
        assert!(dot.contains("n0 [label=\"load\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"3\" color=red penwidth=2]"));
    }

    #[test]
    fn escapes_quotes() {
        let mut g = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "q", |s| s.to_string(), &[]);
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn skips_tombstoned_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e = g.add_edge(a, b, 1);
        g.remove_edge(e);
        let dot = to_dot(&g, "t", |_| "x".into(), &[]);
        assert!(!dot.contains("->"));
    }
}
