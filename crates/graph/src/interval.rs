//! Half-open lifetime intervals `(a, b]` and maximum-overlap sweeps.
//!
//! The paper defines the lifetime of a value as
//! `LT_σ(u) = (σ_u + δw(u), max_v(σ_v + δr(v))]` — *left-open*: a value
//! written at cycle `c` is available one step later, so a read at `c` of the
//! same register still sees the previous value. The register need `RN_σ(G)`
//! is the maximum number of pairwise-interfering intervals, which for
//! intervals equals the maximum overlap at any point (interval graphs are
//! perfect).

use serde::{Deserialize, Serialize};

/// A half-open interval `(start, end]` on the integer timeline.
///
/// Empty when `end <= start` (a value killed no later than it is written
/// occupies no register — this happens for a value whose only reader is
/// issued at the write cycle with zero delays).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Exclusive left endpoint (the write completion cycle).
    pub start: i64,
    /// Inclusive right endpoint (the kill cycle).
    pub end: i64,
}

impl Interval {
    /// Creates `(start, end]`.
    pub fn new(start: i64, end: i64) -> Self {
        Interval { start, end }
    }

    /// Whether the interval contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether two half-open intervals share a point:
    /// `(a1, b1] ∩ (a2, b2] ≠ ∅  ⟺  a1 < b2 ∧ a2 < b1` (both nonempty).
    #[inline]
    pub fn interferes(&self, other: &Interval) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// The "before" relation `≺` of the interval algebra used by the paper:
    /// `self ≺ other` iff `self` ends no later than `other` starts.
    #[inline]
    pub fn before(&self, other: &Interval) -> bool {
        self.end <= other.start
    }

    /// Number of integer points in the interval (`0` if empty).
    pub fn len(&self) -> i64 {
        (self.end - self.start).max(0)
    }
}

/// Maximum number of simultaneously "alive" intervals, i.e. the maximum
/// clique of the interference graph. Empty intervals never contribute.
///
/// Runs a sweep over endpoint events in `O(k log k)`.
pub fn max_overlap(intervals: &[Interval]) -> usize {
    // Events at integer point p: an interval (a, b] covers points a+1 ..= b.
    // Opening at a+1, closing after b.
    let mut events: Vec<(i64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for iv in intervals {
        if iv.is_empty() {
            continue;
        }
        events.push((iv.start + 1, 1));
        events.push((iv.end + 1, -1));
    }
    // Sort by position; process closings before openings at the same point
    // is NOT needed because close at b+1 vs open at a+1: if b+1 == a'+1 then
    // b == a', intervals (a,b] and (a',b'] with a' = b do not interfere, so
    // the closing must apply first: order -1 before +1 at equal positions.
    events.sort_unstable();
    let mut cur = 0i64;
    let mut best = 0i64;
    for (_, delta) in events {
        cur += delta as i64;
        best = best.max(cur);
    }
    best as usize
}

/// Returns one time point achieving the maximum overlap, with the indices of
/// the intervals alive there. Useful for extracting a *saturating set* of
/// values from a schedule.
pub fn max_overlap_witness(intervals: &[Interval]) -> (usize, i64, Vec<usize>) {
    let mut events: Vec<(i64, i32)> = Vec::new();
    for iv in intervals {
        if iv.is_empty() {
            continue;
        }
        events.push((iv.start + 1, 1));
        events.push((iv.end + 1, -1));
    }
    events.sort_unstable();
    let mut cur = 0i64;
    let mut best = 0i64;
    let mut best_point = 0i64;
    for (p, delta) in events {
        cur += delta as i64;
        if cur > best {
            best = cur;
            best_point = p;
        }
    }
    let members: Vec<usize> = intervals
        .iter()
        .enumerate()
        .filter(|(_, iv)| !iv.is_empty() && iv.start < best_point && best_point <= iv.end)
        .map(|(i, _)| i)
        .collect();
    (best as usize, best_point, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interference_semantics() {
        let a = Interval::new(0, 5);
        let b = Interval::new(5, 10); // starts exactly where a ends: (0,5] vs (5,10]
        assert!(
            !a.interferes(&b),
            "touching half-open intervals do not interfere"
        );
        assert!(a.before(&b));
        let c = Interval::new(4, 6);
        assert!(a.interferes(&c));
        assert!(c.interferes(&a), "interference is symmetric");
        assert!(!a.before(&c));
    }

    #[test]
    fn empty_intervals_never_interfere() {
        let e = Interval::new(3, 3);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let full = Interval::new(0, 10);
        assert!(!e.interferes(&full));
        assert!(!full.interferes(&e));
    }

    #[test]
    fn overlap_counts() {
        let ivs = [
            Interval::new(0, 10),
            Interval::new(2, 5),
            Interval::new(3, 4),
            Interval::new(9, 12),
        ];
        // at point 4: intervals 0,1,2 alive -> 3
        assert_eq!(max_overlap(&ivs), 3);
        let (k, point, members) = max_overlap_witness(&ivs);
        assert_eq!(k, 3);
        assert_eq!(members.len(), 3);
        for &m in &members {
            assert!(ivs[m].start < point && point <= ivs[m].end);
        }
    }

    #[test]
    fn disjoint_is_one() {
        let ivs = [
            Interval::new(0, 1),
            Interval::new(1, 2),
            Interval::new(2, 3),
        ];
        assert_eq!(max_overlap(&ivs), 1);
    }

    #[test]
    fn no_intervals() {
        assert_eq!(max_overlap(&[]), 0);
        let (k, _, members) = max_overlap_witness(&[]);
        assert_eq!(k, 0);
        assert!(members.is_empty());
    }

    #[test]
    fn negative_coordinates() {
        let ivs = [Interval::new(-10, -2), Interval::new(-5, 0)];
        assert_eq!(max_overlap(&ivs), 2);
    }

    /// Brute-force overlap: count at every integer point in range.
    fn brute_overlap(ivs: &[Interval]) -> usize {
        let mut best = 0;
        for p in -50i64..=50 {
            let c = ivs
                .iter()
                .filter(|iv| !iv.is_empty() && iv.start < p && p <= iv.end)
                .count();
            best = best.max(c);
        }
        best
    }

    proptest! {
        #[test]
        fn sweep_matches_brute_force(raw in proptest::collection::vec((-40i64..40, -40i64..40), 0..25)) {
            let ivs: Vec<Interval> = raw.into_iter().map(|(a, b)| Interval::new(a, b)).collect();
            prop_assert_eq!(max_overlap(&ivs), brute_overlap(&ivs));
        }

        #[test]
        fn witness_is_consistent(raw in proptest::collection::vec((-40i64..40, 0i64..20), 1..20)) {
            let ivs: Vec<Interval> = raw.into_iter().map(|(a, len)| Interval::new(a, a + len)).collect();
            let (k, point, members) = max_overlap_witness(&ivs);
            prop_assert_eq!(k, max_overlap(&ivs));
            prop_assert_eq!(members.len(), k);
            for &m in &members {
                prop_assert!(ivs[m].start < point && point <= ivs[m].end);
            }
            // all members pairwise interfere (they share `point`)
            for &a in &members {
                for &b in &members {
                    if a != b {
                        prop_assert!(ivs[a].interferes(&ivs[b]));
                    }
                }
            }
        }
    }
}
