//! Hopcroft–Karp maximum bipartite matching with König vertex-cover
//! extraction.
//!
//! This is the engine behind the Dilworth antichain computation: the maximum
//! antichain of a poset is obtained from a minimum vertex cover of the
//! comparability bipartite graph, which König's theorem derives from a
//! maximum matching.

/// A bipartite graph with `n_left` left vertices and `n_right` right
/// vertices; adjacency is stored left-to-right.
#[derive(Clone, Debug, Default)]
pub struct BipartiteGraph {
    n_left: usize,
    n_right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn new(n_left: usize, n_right: usize) -> Self {
        BipartiteGraph {
            n_left,
            n_right,
            adj: vec![Vec::new(); n_left],
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.n_left && r < self.n_right, "edge out of range");
        self.adj[l].push(r);
    }

    /// Re-dimensions the graph and removes every edge, keeping the adjacency
    /// allocations of earlier uses alive for reuse.
    pub fn reset(&mut self, n_left: usize, n_right: usize) {
        self.n_left = n_left;
        self.n_right = n_right;
        for row in &mut self.adj {
            row.clear();
        }
        if self.adj.len() < n_left {
            self.adj.resize_with(n_left, Vec::new);
        }
    }

    /// Number of left vertices.
    pub fn n_left(&self) -> usize {
        self.n_left
    }

    /// Number of right vertices.
    pub fn n_right(&self) -> usize {
        self.n_right
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }
}

/// Result of a maximum-matching computation.
#[derive(Clone, Debug)]
pub struct MatchingResult {
    /// `pair_left[l] = Some(r)` if left `l` is matched to right `r`.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[r] = Some(l)` if right `r` is matched to left `l`.
    pub pair_right: Vec<Option<usize>>,
    /// Matching cardinality.
    pub size: usize,
    /// König minimum vertex cover: flags for left vertices in the cover.
    pub cover_left: Vec<bool>,
    /// König minimum vertex cover: flags for right vertices in the cover.
    pub cover_right: Vec<bool>,
}

const INF: u32 = u32::MAX;

/// Reusable working storage for [`hopcroft_karp_into`]. The pairing and
/// cover vectors double as the result; BFS layers and the work queue are
/// internal. All buffers are retained across calls.
#[derive(Clone, Debug, Default)]
pub struct MatchingScratch {
    /// `pair_left[l] = Some(r)` if left `l` is matched to right `r`.
    pub pair_left: Vec<Option<usize>>,
    /// `pair_right[r] = Some(l)` if right `r` is matched to left `l`.
    pub pair_right: Vec<Option<usize>>,
    /// Matching cardinality.
    pub size: usize,
    /// König minimum vertex cover: flags for left vertices in the cover.
    pub cover_left: Vec<bool>,
    /// König minimum vertex cover: flags for right vertices in the cover.
    pub cover_right: Vec<bool>,
    dist: Vec<u32>,
    queue: Vec<usize>,
}

impl MatchingScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Hopcroft–Karp maximum matching in `O(E·√V)`; also extracts a König
/// minimum vertex cover (|cover| == matching size).
pub fn hopcroft_karp(g: &BipartiteGraph) -> MatchingResult {
    let mut s = MatchingScratch::new();
    hopcroft_karp_into(g, &mut s);
    MatchingResult {
        pair_left: s.pair_left,
        pair_right: s.pair_right,
        size: s.size,
        cover_left: s.cover_left,
        cover_right: s.cover_right,
    }
}

/// Allocation-reusing [`hopcroft_karp`]: results land in `s` (identical to
/// what `hopcroft_karp` returns — it delegates here).
pub fn hopcroft_karp_into(g: &BipartiteGraph, s: &mut MatchingScratch) {
    let (nl, nr) = (g.n_left, g.n_right);
    let pair_l = &mut s.pair_left;
    let pair_r = &mut s.pair_right;
    pair_l.clear();
    pair_l.resize(nl, None);
    pair_r.clear();
    pair_r.resize(nr, None);
    let dist = &mut s.dist;
    dist.clear();
    dist.resize(nl, 0);
    let queue = &mut s.queue;

    loop {
        // BFS layering from free left vertices.
        queue.clear();
        let mut found_augmenting = false;
        for l in 0..nl {
            if pair_l[l].is_none() {
                dist[l] = 0;
                queue.push(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let l = queue[head];
            head += 1;
            for &r in &g.adj[l] {
                match pair_r[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along layered paths.
        for l in 0..nl {
            if pair_l[l].is_none() {
                augment(g, l, pair_l, pair_r, dist);
            }
        }
    }

    s.size = pair_l.iter().filter(|p| p.is_some()).count();

    // König: Z = free left vertices ∪ vertices reachable via alternating
    // paths (unmatched edge L→R, matched edge R→L).
    // Cover = (L \ Z_L) ∪ (R ∩ Z_R). `zl`/`zr` live in the cover buffers
    // (left inverted at the end), the BFS queue doubles as the stack.
    let zl = &mut s.cover_left;
    let zr = &mut s.cover_right;
    zl.clear();
    zl.resize(nl, false);
    zr.clear();
    zr.resize(nr, false);
    let stack = queue;
    stack.clear();
    stack.extend((0..nl).filter(|&l| pair_l[l].is_none()));
    for &l in stack.iter() {
        zl[l] = true;
    }
    while let Some(l) = stack.pop() {
        for &r in &g.adj[l] {
            if pair_l[l] == Some(r) {
                continue; // must leave L on an unmatched edge
            }
            if !zr[r] {
                zr[r] = true;
                if let Some(l2) = pair_r[r] {
                    if !zl[l2] {
                        zl[l2] = true;
                        stack.push(l2);
                    }
                }
            }
        }
    }
    for flag in zl.iter_mut() {
        *flag = !*flag; // cover_left = L \ Z_L
    }

    debug_assert_eq!(
        zl.iter().filter(|&&c| c).count() + zr.iter().filter(|&&c| c).count(),
        s.size,
        "König cover size must equal matching size"
    );
}

fn augment(
    g: &BipartiteGraph,
    l: usize,
    pair_l: &mut Vec<Option<usize>>,
    pair_r: &mut Vec<Option<usize>>,
    dist: &mut Vec<u32>,
) -> bool {
    for i in 0..g.adj[l].len() {
        let r = g.adj[l][i];
        let ok = match pair_r[r] {
            None => true,
            Some(l2) => dist[l2] == dist[l] + 1 && augment(g, l2, pair_l, pair_r, dist),
        };
        if ok {
            pair_l[l] = Some(r);
            pair_r[r] = Some(l);
            return true;
        }
    }
    dist[l] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_valid(g: &BipartiteGraph, m: &MatchingResult) {
        // consistency of the two pairing arrays
        for (l, &p) in m.pair_left.iter().enumerate() {
            if let Some(r) = p {
                assert_eq!(m.pair_right[r], Some(l));
                assert!(g.adj[l].contains(&r), "matched pair must be an edge");
            }
        }
        // cover covers every edge
        for l in 0..g.n_left() {
            for &r in &g.adj[l] {
                assert!(
                    m.cover_left[l] || m.cover_right[r],
                    "edge ({l},{r}) uncovered"
                );
            }
        }
        // König: cover size == matching size
        let cover: usize = m.cover_left.iter().filter(|&&c| c).count()
            + m.cover_right.iter().filter(|&&c| c).count();
        assert_eq!(cover, m.size);
    }

    #[test]
    fn perfect_matching() {
        let mut g = BipartiteGraph::new(3, 3);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(2, 2);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 3);
        check_valid(&g, &m);
    }

    #[test]
    fn needs_augmenting_path() {
        // classic: greedy would match 0-0 and block; HK must augment
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        check_valid(&g, &m);
    }

    #[test]
    fn star_graph() {
        let mut g = BipartiteGraph::new(1, 5);
        for r in 0..5 {
            g.add_edge(0, r);
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 1);
        check_valid(&g, &m);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(4, 4);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 0);
        check_valid(&g, &m);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn asymmetric_sides() {
        let mut g = BipartiteGraph::new(5, 2);
        for l in 0..5 {
            g.add_edge(l, 0);
            g.add_edge(l, 1);
        }
        let m = hopcroft_karp(&g);
        assert_eq!(m.size, 2);
        check_valid(&g, &m);
    }

    /// Exhaustive reference maximum matching via bitmask DP (right side ≤ 12).
    fn brute_force_matching(g: &BipartiteGraph) -> usize {
        fn go(g: &BipartiteGraph, l: usize, used: u32) -> usize {
            if l == g.n_left() {
                return 0;
            }
            // skip l
            let mut best = go(g, l + 1, used);
            for &r in &g.adj[l] {
                if used & (1 << r) == 0 {
                    best = best.max(1 + go(g, l + 1, used | (1 << r)));
                }
            }
            best
        }
        go(g, 0, 0)
    }

    proptest! {
        #[test]
        fn matches_brute_force(edges in proptest::collection::vec((0usize..7, 0usize..7), 0..25)) {
            let mut g = BipartiteGraph::new(7, 7);
            let mut seen = std::collections::HashSet::new();
            for (l, r) in edges {
                if seen.insert((l, r)) {
                    g.add_edge(l, r);
                }
            }
            let m = hopcroft_karp(&g);
            check_valid(&g, &m);
            prop_assert_eq!(m.size, brute_force_matching(&g));
        }
    }
}
