//! # rs-graph — directed-graph substrate for register-saturation analysis
//!
//! This crate provides the graph algorithms the register-saturation framework
//! is built on. It is deliberately self-contained (no external graph crate):
//! the paper's algorithms need tight control over edge latencies (which may be
//! negative for VLIW/EPIC serialization arcs), tombstone edge removal, and
//! poset algorithms (Dilworth antichains via Hopcroft–Karp matching) that are
//! not available off the shelf.
//!
//! ## Modules
//!
//! - [`graph`]: arena-based directed multigraph with `i64` edge latencies.
//! - [`bitset`]: fixed-size bitsets used for transitive-closure rows.
//! - [`topo`]: topological sorting and cycle extraction.
//! - [`paths`]: single-source and all-pairs *longest* paths on DAGs
//!   (the scheduling-theoretic `lp(u, v)` of the paper).
//! - [`closure`]: bitset transitive closure / reachability.
//! - [`matching`]: Hopcroft–Karp maximum bipartite matching with König
//!   vertex-cover extraction.
//! - [`antichain`]: maximum antichain and minimum chain cover of a poset
//!   (Dilworth / Mirsky machinery used to evaluate `RS` for a fixed killing
//!   function).
//! - [`interval`]: half-open lifetime intervals `(a, b]` and the sweep that
//!   computes the maximum number of simultaneously alive values.
//! - [`dot`]: Graphviz export for debugging and documentation.
//!
//! ## Quick example
//!
//! ```
//! use rs_graph::{DiGraph, paths, antichain};
//!
//! let mut g: DiGraph<&str> = DiGraph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 2);
//! g.add_edge(b, c, 3);
//! let order = rs_graph::topo::topo_sort(&g).unwrap();
//! assert_eq!(order.len(), 3);
//! let lp = paths::longest_from(&g, a);
//! assert_eq!(lp[c.index()], Some(5));
//! ```

#![forbid(unsafe_code)]

pub mod antichain;
pub mod bitset;
pub mod closure;
pub mod dot;
pub mod graph;
pub mod interval;
pub mod matching;
pub mod paths;
pub mod topo;

pub use antichain::AntichainScratch;
pub use antichain::{max_antichain, max_antichain_into, min_chain_cover, AntichainResult};
pub use bitset::{BitSet, BitSetPool};
pub use closure::TransitiveClosure;
pub use graph::{DiGraph, EdgeId, NodeId};
pub use interval::{max_overlap, Interval};
pub use matching::{
    hopcroft_karp, hopcroft_karp_into, BipartiteGraph, MatchingResult, MatchingScratch,
};
pub use topo::{cycle_witness, is_acyclic, topo_sort, topo_sort_into, CycleError};

/// Sentinel latency used in longest-path tables for "no path".
pub const NO_PATH: i64 = i64::MIN;
