//! Bitset transitive closure / reachability.
//!
//! The disjoint-value DAG and the poset algorithms need `O(1)` reachability
//! queries; one bitset row per node gives `O(n·m/64)` construction.

use crate::bitset::{BitSet, BitSetPool};
use crate::graph::{DiGraph, NodeId};
use crate::topo::topo_sort;

/// Reachability oracle for a DAG. `reaches(u, v)` is true iff there is a
/// path of one or more edges from `u` to `v` (irreflexive: `reaches(u, u)`
/// is false unless the caller made it so via [`TransitiveClosure::insert`]).
#[derive(Clone, Debug)]
pub struct TransitiveClosure {
    rows: Vec<BitSet>,
}

impl Default for TransitiveClosure {
    fn default() -> Self {
        Self::empty()
    }
}

impl TransitiveClosure {
    /// Builds the closure of a DAG.
    pub fn new<N>(g: &DiGraph<N>) -> Self {
        let order = topo_sort(g).expect("TransitiveClosure requires a DAG");
        let mut tc = Self::empty();
        tc.build_into(g, &order, &mut BitSetPool::new());
        tc
    }

    /// A closure over zero nodes, ready for [`TransitiveClosure::build_into`].
    pub fn empty() -> Self {
        TransitiveClosure { rows: Vec::new() }
    }

    /// Rebuilds the closure for `g` in place. `order` must be a topological
    /// order of `g`; rows are recycled through `pool` when the node count
    /// shrinks and drawn back out when it grows, so a warm batch run touches
    /// the heap only at new high-water marks.
    pub fn build_into<N>(&mut self, g: &DiGraph<N>, order: &[NodeId], pool: &mut BitSetPool) {
        let n = g.node_count();
        debug_assert_eq!(order.len(), n, "order must cover the graph");
        while self.rows.len() > n {
            pool.release(self.rows.pop().expect("len checked"));
        }
        for row in &mut self.rows {
            row.reset(n);
        }
        while self.rows.len() < n {
            self.rows.push(pool.acquire(n));
        }
        let rows = &mut self.rows;
        for &u in order.iter().rev() {
            // descendants(u) = ∪ over successors s of ({s} ∪ descendants(s)),
            // iterated straight off the adjacency list (no temporary buffer).
            let ui = u.index();
            for e in g.out_edges(u) {
                let si = g.dst(e).index();
                if si != ui {
                    // split_at_mut to borrow two rows
                    if ui < si {
                        let (left, right) = rows.split_at_mut(si);
                        left[ui].union_with(&right[0]);
                    } else {
                        let (left, right) = rows.split_at_mut(ui);
                        right[0].union_with(&left[si]);
                    }
                    rows[ui].insert(si);
                }
            }
        }
    }

    /// Strict reachability query.
    #[inline]
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        self.rows[u.index()].contains(v.index())
    }

    /// Reflexive-or-strict reachability.
    #[inline]
    pub fn reaches_eq(&self, u: NodeId, v: NodeId) -> bool {
        u == v || self.reaches(u, v)
    }

    /// Whether `u` and `v` are incomparable (no path either way, and distinct).
    #[inline]
    pub fn incomparable(&self, u: NodeId, v: NodeId) -> bool {
        u != v && !self.reaches(u, v) && !self.reaches(v, u)
    }

    /// The descendant row of `u`.
    #[inline]
    pub fn descendants(&self, u: NodeId) -> &BitSet {
        &self.rows[u.index()]
    }

    /// Number of strict descendants of `u`.
    pub fn descendant_count(&self, u: NodeId) -> usize {
        self.rows[u.index()].count()
    }

    /// Manually asserts reachability `u ⇝ v` (used by callers that overlay
    /// extra precedence on top of a graph closure).
    pub fn insert(&mut self, u: NodeId, v: NodeId) {
        self.rows[u.index()].insert(v.index());
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the closure covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn diamond_closure() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(a, c, 0);
        g.add_edge(b, d, 0);
        g.add_edge(c, d, 0);
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(a, d));
        assert!(tc.reaches(a, b));
        assert!(!tc.reaches(d, a));
        assert!(!tc.reaches(b, c));
        assert!(tc.incomparable(b, c));
        assert!(!tc.incomparable(a, d));
        assert!(!tc.reaches(a, a));
        assert!(tc.reaches_eq(a, a));
        assert_eq!(tc.descendant_count(a), 3);
        assert_eq!(tc.descendant_count(d), 0);
    }

    #[test]
    fn build_into_recycles_rows() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, c, 0);
        let order = topo_sort(&g).unwrap();
        let mut pool = BitSetPool::new();
        let mut tc = TransitiveClosure::empty();
        tc.build_into(&g, &order, &mut pool);
        assert!(tc.reaches(a, c));
        // shrink: extra rows land in the pool, stale bits cleared on reuse
        let mut g2: DiGraph<()> = DiGraph::new();
        let x = g2.add_node(());
        let order2 = topo_sort(&g2).unwrap();
        tc.build_into(&g2, &order2, &mut pool);
        assert_eq!(tc.len(), 1);
        assert_eq!(pool.pooled(), 2);
        assert!(!tc.reaches(x, x));
        // grow again: matches a fresh build
        tc.build_into(&g, &order, &mut pool);
        let fresh = TransitiveClosure::new(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                assert_eq!(tc.reaches(u, v), fresh.reaches(u, v));
            }
        }
    }

    #[test]
    fn manual_insert() {
        let mut g = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let mut tc = TransitiveClosure::new(&g);
        assert!(!tc.reaches(a, b));
        tc.insert(a, b);
        assert!(tc.reaches(a, b));
    }

    proptest! {
        /// Closure agrees with DFS reachability on random DAGs.
        #[test]
        fn matches_dfs(edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40)) {
            let mut g: DiGraph<()> = DiGraph::new();
            for _ in 0..12 {
                g.add_node(());
            }
            for (u, v) in edges {
                // orient edges low -> high to guarantee a DAG
                if u < v {
                    g.add_edge(NodeId(u as u32), NodeId(v as u32), 1);
                }
            }
            let tc = TransitiveClosure::new(&g);
            // reference DFS
            for s in g.node_ids() {
                let mut seen = [false; 12];
                let mut stack = vec![s];
                while let Some(u) = stack.pop() {
                    for v in g.successors(u) {
                        if !seen[v.index()] {
                            seen[v.index()] = true;
                            stack.push(v);
                        }
                    }
                }
                for t in g.node_ids() {
                    prop_assert_eq!(tc.reaches(s, t), seen[t.index()],
                        "closure mismatch {:?} -> {:?}", s, t);
                }
            }
        }
    }
}
